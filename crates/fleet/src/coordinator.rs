//! The fleet coordinator: one front-door HTTP server over N shards.
//!
//! The coordinator owns no simulation code. It admits jobs (per-client
//! quotas, two-level QoS queue), hash-routes single runs onto shards,
//! scatters grid sweeps cell-by-cell across every shard, polls shard-local
//! jobs to completion, gathers batch results deterministically, proxies
//! event streams, and merges every shard's full-fidelity wire metrics into
//! one fleet-wide registry under `shard<i>.` namespaces.
//!
//! Supervision is the shard set's ([`crate::shard::ShardSet`]): a killed
//! or wedged shard is restarted on its own journal directory, replays its
//! write-ahead journal, and resumes interrupted runs from checkpoints —
//! the coordinator's pollers just keep polling the same shard-local job
//! IDs at the new address, so a mid-sweep `SIGKILL` costs latency, never
//! results.

use crate::config::{CommitError, RollbackError, Slot, SlotMachine, StageError};
use crate::quota::{Class, ClientQuotas, QosQueue, QueueError};
use crate::router::{CellState, FleetJob, FleetJobKind, JobBoard};
use crate::shard::{ShardLauncher, ShardSet};
use baryon_bench::batch::BatchPlan;
use baryon_bench::spec::JobSpec;
use baryon_compress::crc::crc32;
use baryon_core::checkpoint::atomic_write;
use baryon_core::policy::FleetPolicy;
use baryon_serve::client::{Client, ClientError, ClientResponse};
use baryon_serve::error::ErrorCode;
use baryon_serve::http::{read_request, ChunkedWriter, Request, Response, CRC_HEADER};
use baryon_serve::job::{CancelOutcome, JobState};
use baryon_serve::progress::ProgressBoard;
use baryon_sim::json::{self, Json};
use baryon_sim::telemetry::Registry;
use baryon_sim::wire;
use std::io::{self, BufReader};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Coordinator construction knobs (the CLI's `fleet` flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// TCP port on 127.0.0.1; `0` asks for an ephemeral port.
    pub port: u16,
    /// Number of worker shards to spawn and supervise.
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Bounded queue depth per shard.
    pub shard_queue_depth: usize,
    /// Coordinator dispatch-queue capacity *per class* — a full batch
    /// backlog cannot reject interactive work.
    pub queue_cap: usize,
    /// Per-client in-flight job cap (fleet jobs, not cells).
    pub max_in_flight_per_client: usize,
    /// Root directory for per-shard journals (`<root>/shard<i>/`).
    pub journal_root: PathBuf,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            port: 8678,
            shards: 3,
            workers_per_shard: 2,
            shard_queue_depth: 64,
            queue_cap: 256,
            max_in_flight_per_client: 8,
            journal_root: PathBuf::from("fleet-journal"),
        }
    }
}

/// Fleet-level counters, merged into the `/v1/metrics` registry under
/// `fleet.*` alongside each shard's absorbed `shard<i>.serve.*` metrics.
#[derive(Default)]
struct FleetMetrics {
    submitted: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_queue: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    redispatched: AtomicU64,
    /// Cells re-dispatched off a shard that exhausted its crash-loop
    /// budget and was quarantined.
    failover: AtomicU64,
    /// Shard replies that flunked their CRC frame (a lying shard) and
    /// were discarded instead of trusted.
    reply_errors: AtomicU64,
    /// Results computed under a config generation whose roll failed —
    /// withheld from gathers and re-dispatched under the restored config.
    quarantined_results: AtomicU64,
}

/// A shard reply the coordinator refused to act on.
#[derive(Debug)]
pub enum ShardError {
    /// The reply body does not hash to its `x-baryon-crc` frame — a
    /// lying shard (or a corrupting path between us and it).
    Corrupt {
        /// The CRC the shard stamped on the reply.
        claimed: String,
        /// The CRC of the body that actually arrived.
        actual: u32,
    },
    /// Transport-level failure reaching the shard.
    Transport(ClientError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Corrupt { claimed, actual } => write!(
                f,
                "shard reply failed its CRC check (claimed {claimed}, body is {actual:08x})"
            ),
            ShardError::Transport(e) => write!(f, "shard unreachable: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One unit of dispatch: a whole single run (`cell == None`) or one batch
/// cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WorkItem {
    fleet_id: u64,
    cell: Option<usize>,
}

/// State shared by the accept loop, handlers, dispatchers, the poller,
/// and the supervisor.
struct FleetShared {
    board: JobBoard,
    queue: QosQueue<(Class, WorkItem)>,
    quotas: ClientQuotas,
    shards: ShardSet,
    progress: ProgressBoard,
    metrics: FleetMetrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// The A/B config slot machine (persisted under `config_dir`).
    config: Mutex<SlotMachine>,
    /// Where slot policies and the machine state live
    /// (`<journal_root>/config/`).
    config_dir: PathBuf,
    /// Serializes rollouts: commit/rollback hold this for the whole
    /// rolling restart so at most one engine runs.
    rollout: Mutex<()>,
    /// The config generation a commit is currently rolling toward (0 =
    /// no roll in flight). While nonzero, the poller stages finished
    /// results instead of settling them — a gather must never mix cells
    /// computed under a generation that may yet be rolled back.
    rolling_to: AtomicU64,
}

impl FleetShared {
    /// Applies a board update; when it settles the job, releases the
    /// client's quota slot, bumps completion counters, and nudges event
    /// streams via the progress board.
    fn apply_update(&self, id: u64, apply: impl FnOnce(&mut FleetJob)) {
        let Some((client, _class)) = self.board.update(id, apply) else {
            return;
        };
        self.settle_bookkeeping(id, &client);
    }

    /// The post-settle tail shared by [`FleetShared::apply_update`] and
    /// staged-result resolution: release the quota slot, bump the
    /// completion counter, and wake event streams.
    fn settle_bookkeeping(&self, id: u64, client: &str) {
        self.quotas.release(client);
        match self.board.state(id) {
            Some(JobState::Done) => {
                self.metrics.done.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Wake any stream parked on wait_past so it notices the settle
        // promptly.
        if let Some(job) = self.board.get(id) {
            let (done, total) = (job.cells_done(), job.cells_total());
            self.progress.publish(id, |jp| {
                jp.phase = "done";
                jp.cells_done = done;
                jp.cells_total = total;
                jp.ops = done.max(jp.ops);
            });
        }
    }

    /// Validates the CRC frame every shard stamps on its replies
    /// ([`CRC_HEADER`]). A mismatch means the body was corrupted after
    /// the shard computed it — the reply is discarded (typed
    /// [`ShardError::Corrupt`], counted in `fleet.shard.reply_errors`)
    /// rather than trusted, and callers treat it like any transient
    /// shard failure: retry, requeue, or poll again next tick.
    fn verify_reply(&self, response: ClientResponse) -> Result<ClientResponse, ShardError> {
        let Some(claimed) = response.header(CRC_HEADER).map(str::to_owned) else {
            return Ok(response); // no frame (e.g. a pre-CRC shard) — accept
        };
        let actual = crc32(response.body.as_bytes());
        if claimed == format!("{actual:08x}") {
            return Ok(response);
        }
        self.metrics.reply_errors.fetch_add(1, Ordering::Relaxed);
        Err(ShardError::Corrupt { claimed, actual })
    }
}

/// A handle for chaos testing and introspection, detached from the
/// coordinator's serving loop.
#[derive(Clone)]
pub struct FleetController {
    shared: Arc<FleetShared>,
}

impl FleetController {
    /// SIGKILLs shard `index`'s current process; the supervisor restarts
    /// it on the next tick.
    ///
    /// # Errors
    ///
    /// Propagates the kill failure.
    pub fn kill_shard(&self, index: usize) -> io::Result<()> {
        self.shared.shards.kill(index)
    }

    /// Total shard restarts performed so far.
    pub fn restarts(&self) -> u64 {
        self.shared.shards.restarts()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// The coordinator's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Pauses dispatch and supervision for a shard (test hook — the
    /// rollout engine pauses shards itself during commit/rollback).
    pub fn pause_shard(&self, index: usize) {
        self.shared.shards.pause(index);
    }

    /// Resumes a paused shard.
    pub fn unpause_shard(&self, index: usize) {
        self.shared.shards.unpause(index);
    }

    /// The active config generation (0 = built-in baseline).
    pub fn config_generation(&self) -> u64 {
        self.shared
            .config
            .lock()
            .expect("config lock poisoned")
            .active()
            .1
            .generation
    }

    /// How many shards are currently quarantined (crash-loop budget
    /// exhausted, out of the routing rotation).
    pub fn quarantined_shards(&self) -> u64 {
        self.shared.shards.quarantined_count()
    }

    /// Whether shard `index` is quarantined.
    pub fn shard_is_quarantined(&self, index: usize) -> bool {
        self.shared.shards.is_quarantined(index)
    }

    /// Completed rollbacks (manual and automatic).
    pub fn config_rollbacks(&self) -> u64 {
        self.shared
            .config
            .lock()
            .expect("config lock poisoned")
            .rollbacks()
    }
}

/// A bound, running fleet (shards spawned, dispatchers/poller/supervisor
/// threads live; call [`Fleet::run`] to serve connections).
pub struct Fleet {
    listener: TcpListener,
    shared: Arc<FleetShared>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
    background: Vec<std::thread::JoinHandle<()>>,
}

/// Supervisor cadence: how often shards are probed and the dead restarted.
const SUPERVISE_EVERY: Duration = Duration::from_millis(500);
/// Poller cadence: how often dispatched shard-local jobs are polled.
const POLL_EVERY: Duration = Duration::from_millis(100);

impl Fleet {
    /// Spawns the shard processes, binds `127.0.0.1:<port>`, and starts
    /// the dispatcher, poller, and supervisor threads.
    ///
    /// # Errors
    ///
    /// Shard spawn failures (the launcher's program missing, a shard
    /// exiting before announcing its address) and the bind failure; any
    /// already-spawned shards are killed before returning.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards`, `cfg.queue_cap`, or
    /// `cfg.max_in_flight_per_client` is zero.
    pub fn bind(cfg: FleetConfig, mut launcher: ShardLauncher) -> io::Result<Fleet> {
        // Bind before spawning: a taken port fails fast (with its
        // distinctive `AddrInUse`) instead of after N process launches.
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, cfg.port))?;
        // Recover the config slots before spawning so restarted fleets
        // come back up on the generation they last committed.
        let config_dir = cfg.journal_root.join("config");
        std::fs::create_dir_all(&config_dir)?;
        let machine = load_slot_machine(&config_dir);
        let (active, info) = machine.active();
        if info.generation > 0 {
            launcher.policy_path = Some(slot_policy_path(&config_dir, active));
        }
        let shards = ShardSet::spawn(launcher, &cfg.journal_root, cfg.shards)?;
        let shared = Arc::new(FleetShared {
            board: JobBoard::new(),
            queue: QosQueue::new(cfg.queue_cap),
            quotas: ClientQuotas::new(cfg.max_in_flight_per_client),
            shards,
            progress: ProgressBoard::new(),
            metrics: FleetMetrics::default(),
            shutdown: AtomicBool::new(false),
            addr: listener.local_addr()?,
            config: Mutex::new(machine),
            config_dir,
            rollout: Mutex::new(()),
            rolling_to: AtomicU64::new(0),
        });
        let dispatchers = (0..cfg.shards.max(2))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("baryon-fleet-dispatch-{i}"))
                    .spawn(move || dispatcher_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let mut background = Vec::new();
        {
            let shared = Arc::clone(&shared);
            background.push(
                std::thread::Builder::new()
                    .name("baryon-fleet-poller".to_owned())
                    .spawn(move || poller_loop(&shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            background.push(
                std::thread::Builder::new()
                    .name("baryon-fleet-supervisor".to_owned())
                    .spawn(move || supervisor_loop(&shared))?,
            );
        }
        Ok(Fleet {
            listener,
            shared,
            dispatchers,
            background,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A detached handle for chaos testing, usable while [`Fleet::run`]
    /// serves on another thread.
    pub fn controller(&self) -> FleetController {
        FleetController {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until `POST /v1/shutdown`, then drains dispatchers, stops
    /// the background threads, and shuts the shards down.
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful bind.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else {
                continue;
            };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(stream, &shared));
        }
        for dispatcher in self.dispatchers {
            let _ = dispatcher.join();
        }
        for thread in self.background {
            let _ = thread.join();
        }
        self.shared.shards.shutdown();
        Ok(())
    }
}

fn dispatcher_loop(shared: &Arc<FleetShared>) {
    while let Some((class, item)) = shared.queue.pop() {
        if shared.shutdown.load(Ordering::SeqCst) {
            continue; // drain without dispatching
        }
        dispatch(shared, class, item);
    }
}

/// Dispatches one work item: POSTs the cell's spec to its shard and
/// records the shard-local job ID. A refused or unreachable shard puts the
/// item back on the queue (the supervisor is restarting the shard
/// meanwhile); an item that cannot be requeued fails its cell.
fn dispatch(shared: &Arc<FleetShared>, class: Class, item: WorkItem) {
    let Some(job) = shared.board.get(item.fleet_id) else {
        return; // forgotten (admission rolled back)
    };
    if job.state.is_settled() {
        return; // cancelled while queued
    }
    let (shard, spec_body) = match (&job.kind, item.cell) {
        (FleetJobKind::Single { shard, cell }, None) => {
            if !matches!(cell, CellState::Pending) {
                return; // duplicate item; already dispatched
            }
            (*shard, job.spec.to_json().render())
        }
        (FleetJobKind::Batch { plan, cells }, Some(index)) => {
            if !matches!(cells.get(index), Some(CellState::Pending)) {
                return;
            }
            let cell = &plan.cells[index];
            (
                cell.shard,
                JobSpec::Run(cell.spec.clone()).to_json().render(),
            )
        }
        _ => return, // malformed item; nothing sensible to do
    };
    // A quarantined shard never comes back on its own; deterministically
    // probe forward from the routed index for a shard still in rotation.
    let Some(shard) = first_in_rotation(shared, shard) else {
        // Every shard is quarantined; keep the item in play — an
        // operator rollout is the one path back.
        requeue(shared, class, item);
        return;
    };
    if shared.shards.is_paused(shard) {
        // The rollout engine is draining/restarting this shard; keep the
        // item in play until the shard comes back.
        requeue(shared, class, item);
        return;
    }
    let outcome =
        shared
            .shards
            .client(shard)
            .request_with_retry("POST", "/v1/jobs", Some(&spec_body));
    let remote = match outcome {
        // A 5xx survived the client's retries: 503 means queue full /
        // shutting down, 500 a transient shard-side fault (e.g. the
        // journal under a hostile disk refusing the submission). Either
        // way the shard may recover — back off and requeue, never fail
        // the cell on a server-side error.
        Ok(response) if response.status >= 500 => None,
        // A corrupt 202 is indistinguishable from garbage: the shard may
        // or may not hold the job. Requeue — the duplicate-dispatch guard
        // above drops the item if the poller lands it first.
        Ok(response) => match shared.verify_reply(response) {
            Err(_) => None,
            Ok(response) => match response.into_result() {
                Ok(accepted) => match json::parse(&accepted.body)
                    .ok()
                    .as_ref()
                    .and_then(|doc| get_u64(doc, "id"))
                {
                    Some(remote) => Some(remote),
                    None => {
                        fail_cell(shared, &item, "shard sent an unreadable 202 body");
                        return;
                    }
                },
                Err(e) => {
                    // The shard understood the request and refused it for
                    // good (e.g. invalid spec surfaced late) — fail the
                    // cell; retrying cannot change a deterministic
                    // rejection.
                    fail_cell(shared, &item, &format!("shard rejected job: {e}"));
                    return;
                }
            },
        },
        Err(_) => None, // connect/timeout → shard is restarting; requeue
    };
    let Some(remote) = remote else {
        requeue(shared, class, item);
        return;
    };
    shared.apply_update(item.fleet_id, |job| match (&mut job.kind, item.cell) {
        (FleetJobKind::Single { cell, .. }, None) => {
            *cell = CellState::Dispatched { shard, remote };
        }
        (FleetJobKind::Batch { cells, .. }, Some(index)) => {
            cells[index] = CellState::Dispatched { shard, remote };
        }
        _ => {}
    });
}

/// Puts an undeliverable item back on the queue after a short pause. The
/// requeue bypasses the class cap — the item was already admitted, and a
/// momentarily full queue (e.g. a saturating burst while a shard is
/// paused for a rollout) must not cost the job — so only a closed queue
/// (shutdown) fails the cell.
fn requeue(shared: &Arc<FleetShared>, class: Class, item: WorkItem) {
    shared.metrics.redispatched.fetch_add(1, Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(100));
    if shared.queue.requeue(class, (class, item)).is_err() {
        fail_cell(shared, &item, "shard unreachable and dispatch queue closed");
    }
}

/// The first non-quarantined shard at or after `preferred`, probing
/// forward deterministically (`(preferred + k) % n`) so the same cell
/// keeps landing on the same substitute while the quarantine set is
/// stable. `None` when every shard is out of rotation.
fn first_in_rotation(shared: &Arc<FleetShared>, preferred: usize) -> Option<usize> {
    let n = shared.shards.len();
    (0..n)
        .map(|k| (preferred + k) % n)
        .find(|&s| !shared.shards.is_quarantined(s))
}

fn fail_cell(shared: &Arc<FleetShared>, item: &WorkItem, reason: &str) {
    let reason = reason.to_owned();
    shared.apply_update(item.fleet_id, |job| match (&mut job.kind, item.cell) {
        (FleetJobKind::Single { cell, .. }, None) => {
            *cell = CellState::Failed(reason.clone());
        }
        (FleetJobKind::Batch { cells, .. }, Some(index)) => {
            cells[index] = CellState::Failed(reason.clone());
        }
        _ => {}
    });
}

/// The poller: walks every unsettled fleet job and asks shards about its
/// dispatched cells, landing results (and batch progress) on the board.
fn poller_loop(shared: &Arc<FleetShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        for id in shared.board.active_ids() {
            poll_job(shared, id);
        }
        std::thread::sleep(POLL_EVERY);
    }
}

/// One poll pass over a fleet job's dispatched cells.
fn poll_job(shared: &Arc<FleetShared>, id: u64) {
    let Some(job) = shared.board.get(id) else {
        return;
    };
    let dispatched: Vec<(Option<usize>, usize, u64)> = match &job.kind {
        FleetJobKind::Single { cell, .. } => match cell {
            CellState::Dispatched { shard, remote } => vec![(None, *shard, *remote)],
            _ => Vec::new(),
        },
        FleetJobKind::Batch { cells, .. } => cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c {
                CellState::Dispatched { shard, remote } => Some((Some(i), *shard, *remote)),
                _ => None,
            })
            .collect(),
    };
    let before_done = job.cells_done();
    for (cell_index, shard, remote) in dispatched {
        let response = Client::new(shared.shards.addr(shard))
            .connect_timeout(Duration::from_millis(500))
            .read_timeout(Duration::from_secs(5))
            .request("GET", &format!("/v1/jobs/{remote}"), None);
        let record = match response {
            Ok(r) if r.status == 404 => {
                // The shard genuinely lost the job (journal-less restart
                // or eviction) — put the cell back in play.
                shared.metrics.redispatched.fetch_add(1, Ordering::Relaxed);
                let item = WorkItem {
                    fleet_id: id,
                    cell: cell_index,
                };
                shared.apply_update(id, |job| match (&mut job.kind, cell_index) {
                    (FleetJobKind::Single { cell, .. }, None) => *cell = CellState::Pending,
                    (FleetJobKind::Batch { cells, .. }, Some(i)) => {
                        cells[i] = CellState::Pending;
                    }
                    _ => {}
                });
                if shared.queue.requeue(job.class, (job.class, item)).is_err() {
                    fail_cell(shared, &item, "shard lost the job and queue is closed");
                }
                continue;
            }
            // A reply failing its CRC frame is a lying shard: discard it
            // and poll again next tick rather than settle a cell on
            // garbage.
            Ok(r) => match shared.verify_reply(r) {
                Ok(r) => match r.into_result() {
                    Ok(ok) => json::parse(&ok.body).ok(),
                    Err(_) => continue, // transient server-side error; retry next tick
                },
                Err(_) => continue,
            },
            Err(_) => continue, // shard restarting; retry next tick
        };
        let Some(record) = record else { continue };
        let state = get_str(&record, "state").unwrap_or("");
        let update: Option<CellState> = match state {
            "done" => obj_get(&record, "result").cloned().map(CellState::Done),
            "failed" => Some(CellState::Failed(
                get_str(&record, "error")
                    .unwrap_or("shard job failed")
                    .to_owned(),
            )),
            "cancelled" => Some(CellState::Failed("cancelled on shard".to_owned())),
            _ => None, // queued / running — keep polling
        };
        let Some(update) = update else { continue };
        // The `rolling_to` read happens inside the board lock: staged
        // resolution clears the flag *before* taking that lock, so a
        // result landing after resolution scanned the board sees 0 here
        // and settles directly — no cell can stay staged forever.
        shared.apply_update(id, |job| {
            let update = match update.clone() {
                CellState::Done(doc) if shared.rolling_to.load(Ordering::SeqCst) > 0 => {
                    CellState::Staged(doc)
                }
                other => other,
            };
            match (&mut job.kind, cell_index) {
                (FleetJobKind::Single { cell, .. }, None) => *cell = update,
                (FleetJobKind::Batch { cells, .. }, Some(i)) => cells[i] = update,
                _ => {}
            }
        });
    }
    // Publish batch progress when cells landed this pass (settled jobs
    // already published their final snapshot in apply_update).
    if let Some(job) = shared.board.get(id) {
        let (done, total) = (job.cells_done(), job.cells_total());
        if total > 1 && done > before_done && !job.state.is_settled() {
            shared.progress.publish(id, |jp| {
                jp.phase = "measure";
                jp.cells_done = done;
                jp.cells_total = total;
                jp.ops = done;
            });
        }
    }
}

/// The supervisor: periodic health sweep over the shard set. A shard
/// that exhausts its crash-loop budget comes back quarantined — its
/// in-flight cells fail over to healthy shards immediately.
fn supervisor_loop(shared: &Arc<FleetShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        for index in shared.shards.check_and_restart() {
            fail_over_shard(shared, index);
        }
        // Sleep in small steps so shutdown is prompt.
        let mut slept = Duration::ZERO;
        while slept < SUPERVISE_EVERY && !shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
            slept += Duration::from_millis(50);
        }
    }
}

/// Re-dispatches every cell that was in flight on a newly quarantined
/// shard: the cell goes back to `Pending` and onto the queue, where
/// [`dispatch`] routes it around the dead slot. The shard's journal
/// still holds the jobs, but nothing will replay it until an operator
/// rolls the shard back in — waiting on it would strand the cells.
fn fail_over_shard(shared: &Arc<FleetShared>, index: usize) {
    for id in shared.board.active_ids() {
        let Some(job) = shared.board.get(id) else {
            continue;
        };
        let stranded: Vec<Option<usize>> = match &job.kind {
            FleetJobKind::Single { cell, .. } => match cell {
                CellState::Dispatched { shard, .. } if *shard == index => vec![None],
                _ => Vec::new(),
            },
            FleetJobKind::Batch { cells, .. } => cells
                .iter()
                .enumerate()
                .filter_map(|(i, c)| match c {
                    CellState::Dispatched { shard, .. } if *shard == index => Some(Some(i)),
                    _ => None,
                })
                .collect(),
        };
        for cell_index in stranded {
            // Re-check under the board lock: the poller may have landed
            // the cell between the snapshot above and now.
            let mut moved = false;
            shared.apply_update(id, |job| {
                let cell = match (&mut job.kind, cell_index) {
                    (FleetJobKind::Single { cell, .. }, None) => cell,
                    (FleetJobKind::Batch { cells, .. }, Some(i)) => &mut cells[i],
                    _ => return,
                };
                if matches!(cell, CellState::Dispatched { shard, .. } if *shard == index) {
                    *cell = CellState::Pending;
                    moved = true;
                }
            });
            if !moved {
                continue;
            }
            shared.metrics.failover.fetch_add(1, Ordering::Relaxed);
            let item = WorkItem {
                fleet_id: id,
                cell: cell_index,
            };
            if shared.queue.requeue(job.class, (job.class, item)).is_err() {
                fail_cell(shared, &item, "shard quarantined and dispatch queue closed");
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<FleetShared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = Response::error(400, ErrorCode::BadRequest, &e.to_string())
                    .write_to(&mut writer, true);
                return;
            }
            Err(_) => return,
        };
        if let Some(id) = events_target(&request) {
            if shared.board.get(id).is_some() {
                let _ = stream_fleet_events(shared, id, &mut writer);
            } else {
                let _ = Response::error(404, ErrorCode::NotFound, "no such job")
                    .write_to(&mut writer, true);
            }
            return;
        }
        let response = route(shared, &request);
        let close = !request.keep_alive() || shared.shutdown.load(Ordering::SeqCst);
        if response.write_to(&mut writer, close).is_err() || close {
            return;
        }
    }
}

/// `GET /v1/jobs/<id>/events` → the fleet job ID; anything else → `None`.
fn events_target(request: &Request) -> Option<u64> {
    if request.method != "GET" {
        return None;
    }
    let path = request
        .path
        .split_once('?')
        .map_or(request.path.as_str(), |(p, _)| p);
    path.strip_prefix("/v1/jobs/")?
        .strip_suffix("/events")?
        .parse()
        .ok()
}

fn route(shared: &Arc<FleetShared>, request: &Request) -> Response {
    let (path, query) = request
        .path
        .split_once('?')
        .unwrap_or((request.path.as_str(), ""));
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/v1/healthz") => Response::json(
            200,
            &Json::obj([
                ("ok", Json::Bool(true)),
                ("shards", Json::from(shared.shards.len() as u64)),
            ]),
        ),
        ("GET", "/v1/metrics") => metrics_response(shared, query),
        ("POST", "/v1/jobs") => submit(shared, request),
        ("POST", "/v1/shutdown") => shutdown(shared),
        ("GET", "/v1/admin/config") => {
            let machine = shared.config.lock().expect("config lock poisoned");
            Response::json(200, &machine.to_json())
        }
        ("POST", "/v1/admin/config/stage") => admin_stage(shared, request),
        ("POST", "/v1/admin/config/commit") => admin_commit(shared),
        ("POST", "/v1/admin/config/rollback") => admin_rollback(shared),
        _ => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                return job_route(shared, method, rest);
            }
            if matches!(
                path,
                "/v1/healthz"
                    | "/v1/metrics"
                    | "/v1/jobs"
                    | "/v1/shutdown"
                    | "/v1/admin/config"
                    | "/v1/admin/config/stage"
                    | "/v1/admin/config/commit"
                    | "/v1/admin/config/rollback"
            ) {
                return Response::error(405, ErrorCode::MethodNotAllowed, "method not allowed");
            }
            Response::error(404, ErrorCode::NotFound, "no such endpoint")
        }
    }
}

fn job_route(shared: &Arc<FleetShared>, method: &str, rest: &str) -> Response {
    let (id_text, action) = match rest.split_once('/') {
        None => (rest, None),
        Some((id, action)) => (id, Some(action)),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(404, ErrorCode::NotFound, "job IDs are integers");
    };
    match (method, action) {
        ("GET", None) => match shared.board.get(id) {
            Some(job) => Response::json(200, &job.to_json()),
            None => Response::error(404, ErrorCode::NotFound, "no such job"),
        },
        ("POST", Some("cancel")) => {
            // Fetch the quota identity first; cancel only succeeds from
            // `queued`, where the slot is still held.
            let client = shared.board.get(id).map(|j| j.client);
            match shared.board.cancel(id) {
                CancelOutcome::Cancelled => {
                    if let Some(client) = client {
                        shared.quotas.release(&client);
                    }
                    shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                    Response::json(
                        200,
                        &Json::obj([("id", Json::from(id)), ("state", Json::from("cancelled"))]),
                    )
                }
                CancelOutcome::TooLate(state) => Response::error(
                    409,
                    ErrorCode::Conflict,
                    &format!(
                        "job is {}, only queued jobs can be cancelled",
                        state.as_str()
                    ),
                ),
                CancelOutcome::NotFound => Response::error(404, ErrorCode::NotFound, "no such job"),
            }
        }
        (_, None) => Response::error(405, ErrorCode::MethodNotAllowed, "method not allowed"),
        _ => Response::error(404, ErrorCode::NotFound, "no such endpoint"),
    }
}

/// Admission: parse → classify → quota-check → plan → enqueue. Quota
/// refusals answer `429 quota_exceeded`; a full class queue answers `503
/// queue_full` — both with the class's `Retry-After`.
fn submit(shared: &Arc<FleetShared>, request: &Request) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::error(503, ErrorCode::ShuttingDown, "fleet is shutting down");
    }
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, ErrorCode::BadRequest, "body is not UTF-8"),
    };
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            return Response::error(400, ErrorCode::InvalidJson, &format!("invalid JSON: {e}"))
        }
    };
    let spec = match JobSpec::from_json(&doc) {
        Ok(spec) => spec,
        Err(e) => {
            return Response::error(
                400,
                ErrorCode::InvalidSpec,
                &format!("invalid job spec: {e}"),
            )
        }
    };
    let class = match request.header("x-baryon-class") {
        Some(value) => match Class::parse(value.trim()) {
            Some(class) => class,
            None => {
                return Response::error(
                    400,
                    ErrorCode::BadRequest,
                    &format!("unknown class {value:?}: use interactive or batch"),
                )
            }
        },
        None => match &spec {
            JobSpec::Run(_) => Class::Interactive,
            JobSpec::Grid(_) => Class::Batch,
        },
    };
    let client = request
        .header("x-baryon-client")
        .unwrap_or("anon")
        .trim()
        .to_owned();
    if !shared.quotas.try_acquire(&client) {
        shared
            .metrics
            .rejected_quota
            .fetch_add(1, Ordering::Relaxed);
        return Response::error(
            429,
            ErrorCode::QuotaExceeded,
            &format!(
                "client {client:?} already has {} jobs in flight",
                shared.quotas.max_in_flight()
            ),
        )
        .header("Retry-After", &class.retry_after_secs().to_string());
    }
    // Plan the dispatch: singles hash-route whole; grids scatter
    // cell-by-cell across every shard.
    let (kind, items) = match &spec {
        JobSpec::Run(_) => (
            FleetJobKind::Single {
                shard: 0, // patched below once the fleet ID is known
                cell: CellState::Pending,
            },
            Vec::new(),
        ),
        JobSpec::Grid(grid) => {
            let plan = BatchPlan::scatter(grid, shared.shards.len());
            let n = plan.cells.len();
            (
                FleetJobKind::Batch {
                    plan,
                    cells: vec![CellState::Pending; n],
                },
                (0..n).collect(),
            )
        }
    };
    let single = items.is_empty();
    let id = shared.board.admit(spec, client.clone(), class, kind);
    if single {
        // The route is a function of the fleet ID, which admit assigned.
        let shard = crate::shard::route(id, shared.shards.len());
        shared.board.update(id, |job| {
            if let FleetJobKind::Single { shard: s, .. } = &mut job.kind {
                *s = shard;
            }
        });
    }
    let work: Vec<WorkItem> = if single {
        vec![WorkItem {
            fleet_id: id,
            cell: None,
        }]
    } else {
        items
            .into_iter()
            .map(|cell| WorkItem {
                fleet_id: id,
                cell: Some(cell),
            })
            .collect()
    };
    let cells_total = work.len() as u64;
    for (i, item) in work.iter().enumerate() {
        match shared.queue.push(class, (class, *item)) {
            Ok(()) => {}
            Err(e) => {
                // Roll the whole job back; cells already queued will find
                // the job forgotten and drop on the dispatch floor.
                shared.board.forget(id);
                shared.quotas.release(&client);
                shared
                    .metrics
                    .rejected_queue
                    .fetch_add(1, Ordering::Relaxed);
                let (status, code, message) = match e {
                    QueueError::Full => (
                        503,
                        ErrorCode::QueueFull,
                        format!(
                            "{} queue full after {i} of {cells_total} cells, retry later",
                            class.as_str()
                        ),
                    ),
                    QueueError::Closed => (
                        503,
                        ErrorCode::ShuttingDown,
                        "fleet is shutting down".to_owned(),
                    ),
                };
                return Response::error(status, code, &message)
                    .header("Retry-After", &class.retry_after_secs().to_string());
            }
        }
    }
    shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
    Response::json(
        202,
        &Json::obj([
            ("id", Json::from(id)),
            ("state", Json::from("queued")),
            ("class", Json::from(class.as_str())),
            ("cells", Json::from(cells_total)),
        ]),
    )
}

// ---------------------------------------------------------------------------
// Fleet config rollout: the /v1/admin surface and the rolling-restart engine.
// ---------------------------------------------------------------------------

/// Where a slot's policy file lives.
fn slot_policy_path(config_dir: &Path, slot: Slot) -> PathBuf {
    config_dir.join(format!("slot-{}.json", slot.as_str()))
}

/// Loads the persisted slot machine, falling back to the boot state on a
/// missing or unreadable file — a corrupt slots file must never brick the
/// fleet, it just forgets staged candidates.
fn load_slot_machine(config_dir: &Path) -> SlotMachine {
    let path = config_dir.join("slots.bin");
    let Ok(bytes) = std::fs::read(&path) else {
        return SlotMachine::new();
    };
    let mut reader = wire::Reader::new(&bytes);
    match SlotMachine::load_state(&mut reader) {
        Ok(machine) => machine,
        Err(e) => {
            eprintln!(
                "baryon-fleet: ignoring corrupt config slots {}: {e:?}",
                path.display()
            );
            SlotMachine::new()
        }
    }
}

fn persist_slot_machine(shared: &FleetShared, machine: &SlotMachine) {
    let mut w = wire::Writer::new();
    machine.save_state(&mut w);
    if let Err(e) = atomic_write(&shared.config_dir.join("slots.bin"), &w.into_bytes()) {
        eprintln!("baryon-fleet: cannot persist config slots: {e}");
    }
}

/// A millisecond budget from the environment (tests shrink these).
fn env_ms(name: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

/// `POST /v1/admin/config/stage` — validate the candidate policy and
/// persist it into the non-active slot.
fn admin_stage(shared: &Arc<FleetShared>, request: &Request) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, ErrorCode::BadRequest, "body is not UTF-8"),
    };
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            return Response::error(400, ErrorCode::InvalidJson, &format!("invalid JSON: {e}"))
        }
    };
    let policy = match FleetPolicy::from_json(&doc) {
        Ok(policy) => policy,
        Err(e) => {
            return Response::error(
                400,
                ErrorCode::InvalidConfig,
                &format!("invalid policy: {e}"),
            )
        }
    };
    let mut machine = shared.config.lock().expect("config lock poisoned");
    let (slot, generation) = match machine.stage(policy) {
        Ok(staged) => staged,
        Err(StageError::Invalid(e)) => {
            return Response::error(
                400,
                ErrorCode::InvalidConfig,
                &format!("invalid policy: {e}"),
            )
        }
        Err(StageError::RolloutInFlight) => {
            return Response::error(409, ErrorCode::RolloutFailed, "a rollout is in flight")
        }
    };
    // The commit engine boots shards onto this file; it must be durable
    // before the stage is acknowledged.
    let body = match &machine.slot(slot).policy {
        Some(staged) => staged.to_json().render(),
        None => return Response::error(500, ErrorCode::Internal, "staged slot lost its policy"),
    };
    if let Err(e) = atomic_write(&slot_policy_path(&shared.config_dir, slot), body.as_bytes()) {
        return Response::error(
            500,
            ErrorCode::Internal,
            &format!("cannot persist staged policy: {e}"),
        );
    }
    persist_slot_machine(shared, &machine);
    Response::json(
        200,
        &Json::obj([
            ("ok", Json::Bool(true)),
            ("slot", Json::from(slot.as_str())),
            ("generation", Json::from(generation)),
        ]),
    )
}

/// `POST /v1/admin/config/commit` — rolling restart onto the staged slot,
/// auto-rolling back to the active policy if any shard fails its health
/// probe or canary, or if job failures regress during the roll.
fn admin_commit(shared: &Arc<FleetShared>) -> Response {
    let Ok(_guard) = shared.rollout.try_lock() else {
        return Response::error(409, ErrorCode::RolloutFailed, "a rollout is in flight");
    };
    let (target, generation, old_path) = {
        let mut machine = shared.config.lock().expect("config lock poisoned");
        let (active, info) = machine.active();
        let old_path = (info.generation > 0).then(|| slot_policy_path(&shared.config_dir, active));
        match machine.begin_commit() {
            Ok((slot, generation)) => (slot, generation, old_path),
            Err(CommitError::NothingStaged) => {
                return Response::error(
                    409,
                    ErrorCode::Conflict,
                    "nothing staged; stage a config first",
                )
            }
            Err(CommitError::RolloutInFlight) => {
                return Response::error(409, ErrorCode::RolloutFailed, "a rollout is in flight")
            }
        }
    };
    let new_path = Some(slot_policy_path(&shared.config_dir, target));
    // From here until the roll settles, results landing on the board are
    // staged, not gathered: they may have been computed under a
    // generation that is about to be rolled back.
    shared.rolling_to.store(generation.max(1), Ordering::SeqCst);
    match roll_fleet(shared, new_path, old_path) {
        Ok(()) => {
            resolve_staged_results(shared, true);
            let mut machine = shared.config.lock().expect("config lock poisoned");
            machine.boot_succeeded();
            persist_slot_machine(shared, &machine);
            Response::json(
                200,
                &Json::obj([
                    ("ok", Json::Bool(true)),
                    ("active_slot", Json::from(target.as_str())),
                    ("generation", Json::from(generation)),
                ]),
            )
        }
        Err(reason) => {
            resolve_staged_results(shared, false);
            let mut machine = shared.config.lock().expect("config lock poisoned");
            machine.boot_failed();
            persist_slot_machine(shared, &machine);
            Response::error(
                409,
                ErrorCode::RolloutFailed,
                &format!("commit of generation {generation} rolled back: {reason}"),
            )
        }
    }
}

/// Settles the roll's staged results once its outcome is known. On a
/// committed roll the results are promoted (jobs settle, quotas release,
/// streams wake). On a rolled-back roll they are quarantined — counted
/// in `fleet.config.quarantined_results` — and their cells requeued for
/// re-dispatch under the restored config, so the job's eventual gather
/// is byte-identical to one computed wholly under that config.
fn resolve_staged_results(shared: &Arc<FleetShared>, accept: bool) {
    // Clear the flag before scanning: any result that lands after the
    // scan observes 0 (the load is under the same board lock) and
    // settles directly instead of staging forever.
    shared.rolling_to.store(0, Ordering::SeqCst);
    let resolution = shared.board.resolve_staged(accept);
    for (id, client, _class) in &resolution.released {
        shared.settle_bookkeeping(*id, client);
    }
    if !accept && resolution.count > 0 {
        shared
            .metrics
            .quarantined_results
            .fetch_add(resolution.count, Ordering::Relaxed);
    }
    for (id, cell_index) in resolution.requeue {
        let Some(job) = shared.board.get(id) else {
            continue;
        };
        let item = WorkItem {
            fleet_id: id,
            cell: cell_index,
        };
        if shared.queue.requeue(job.class, (job.class, item)).is_err() {
            fail_cell(shared, &item, "staged result quarantined and queue closed");
        }
    }
}

/// `POST /v1/admin/config/rollback` — the same rolling mechanism, back
/// onto the previous slot.
fn admin_rollback(shared: &Arc<FleetShared>) -> Response {
    let Ok(_guard) = shared.rollout.try_lock() else {
        return Response::error(409, ErrorCode::RolloutFailed, "a rollout is in flight");
    };
    let (target, generation, current_path) = {
        let mut machine = shared.config.lock().expect("config lock poisoned");
        let (active, info) = machine.active();
        let current = (info.generation > 0).then(|| slot_policy_path(&shared.config_dir, active));
        match machine.begin_rollback() {
            Ok((slot, generation)) => (slot, generation, current),
            Err(RollbackError::NoPrevious) => {
                return Response::error(
                    409,
                    ErrorCode::Conflict,
                    "no previous config to roll back to",
                )
            }
            Err(RollbackError::RolloutInFlight) => {
                return Response::error(409, ErrorCode::RolloutFailed, "a rollout is in flight")
            }
        }
    };
    // Generation 0 is the built-in baseline: no policy file at all.
    let target_path = (generation > 0).then(|| slot_policy_path(&shared.config_dir, target));
    match roll_fleet(shared, target_path, current_path) {
        Ok(()) => {
            let mut machine = shared.config.lock().expect("config lock poisoned");
            machine.boot_succeeded();
            persist_slot_machine(shared, &machine);
            Response::json(
                200,
                &Json::obj([
                    ("ok", Json::Bool(true)),
                    ("active_slot", Json::from(target.as_str())),
                    ("generation", Json::from(generation)),
                ]),
            )
        }
        Err(reason) => {
            let mut machine = shared.config.lock().expect("config lock poisoned");
            machine.boot_failed();
            persist_slot_machine(shared, &machine);
            Response::error(
                409,
                ErrorCode::RolloutFailed,
                &format!("rollback to generation {generation} failed: {reason}"),
            )
        }
    }
}

/// Rolls every shard onto `new_path`, one at a time. On any failure the
/// already-rolled shards (and the failing one) are rolled back onto
/// `old_path` before returning the error — the fleet never stays split
/// across policies longer than the undo takes.
fn roll_fleet(
    shared: &Arc<FleetShared>,
    new_path: Option<PathBuf>,
    old_path: Option<PathBuf>,
) -> Result<(), String> {
    let failed_before = shared.metrics.failed.load(Ordering::Relaxed);
    let undo = |upto: usize| {
        for j in (0..=upto).rev() {
            if let Err(e) = roll_shard(shared, j, old_path.clone()) {
                // Best effort: unpause and let the supervisor respawn it.
                eprintln!("baryon-fleet: rollback of shard {j} failed: {e}");
                shared.shards.unpause(j);
            }
        }
    };
    for i in 0..shared.shards.len() {
        if let Err(reason) = roll_shard(shared, i, new_path.clone()) {
            undo(i);
            return Err(format!("shard {i}: {reason}"));
        }
    }
    // The canary exercised each shard in isolation; a config can pass it
    // and still fail real jobs. A regressing fleet-wide failure counter
    // during the roll is a rollback, not a success.
    let failed_after = shared.metrics.failed.load(Ordering::Relaxed);
    if failed_after > failed_before {
        undo(shared.shards.len() - 1);
        return Err(format!(
            "{} job(s) failed during the roll",
            failed_after - failed_before
        ));
    }
    Ok(())
}

/// Rolls one shard: pause → drain in-flight cells → respawn with the
/// policy → health probe green → canary run. Unpauses on success; leaves
/// the shard paused on failure so no work lands on it until the caller's
/// rollback has restored the old policy.
fn roll_shard(
    shared: &Arc<FleetShared>,
    index: usize,
    policy_path: Option<PathBuf>,
) -> Result<(), String> {
    shared.shards.pause(index);
    let outcome = drain_shard(shared, index)
        .and_then(|()| {
            shared
                .shards
                .restart_with_policy(index, policy_path)
                .map_err(|e| format!("respawn failed: {e}"))
        })
        .and_then(|()| probe_green(shared, index))
        .and_then(|()| canary(shared, index));
    if outcome.is_ok() {
        shared.shards.unpause(index);
    }
    outcome
}

/// Waits until the shard has no dispatched cells (the poller lands them
/// as they finish; new dispatches requeue while the shard is paused).
fn drain_shard(shared: &Arc<FleetShared>, index: usize) -> Result<(), String> {
    let deadline = Instant::now() + env_ms("BARYON_FLEET_DRAIN_TIMEOUT_MS", 60_000);
    while shard_busy(shared, index) {
        if Instant::now() >= deadline {
            return Err("drain timed out with cells still in flight".to_owned());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Ok(())
}

/// Whether any unsettled fleet job has a cell dispatched on the shard.
fn shard_busy(shared: &Arc<FleetShared>, index: usize) -> bool {
    for id in shared.board.active_ids() {
        let Some(job) = shared.board.get(id) else {
            continue;
        };
        let busy = match &job.kind {
            // Match on where the cell actually landed, not the routed
            // shard — failover can dispatch a single off its home route.
            FleetJobKind::Single { cell, .. } => {
                matches!(cell, CellState::Dispatched { shard, .. } if *shard == index)
            }
            FleetJobKind::Batch { cells, .. } => cells
                .iter()
                .any(|c| matches!(c, CellState::Dispatched { shard, .. } if *shard == index)),
        };
        if busy {
            return true;
        }
    }
    false
}

/// Requires 3 consecutive green health probes within the probe budget.
fn probe_green(shared: &Arc<FleetShared>, index: usize) -> Result<(), String> {
    let deadline = Instant::now() + env_ms("BARYON_FLEET_PROBE_BUDGET_MS", 10_000);
    let mut green = 0;
    loop {
        let ok = Client::new(shared.shards.addr(index))
            .connect_timeout(Duration::from_millis(250))
            .read_timeout(Duration::from_millis(500))
            .healthz()
            .is_ok();
        green = if ok { green + 1 } else { 0 };
        if green >= 3 {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err("health probe never went green".to_owned());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// A tiny deterministic run POSTed straight to the restarted shard: the
/// cheapest end-to-end proof the new config actually executes jobs — a
/// config can bind and answer healthz yet fail every run (e.g. an
/// unmeetable job deadline).
/// Heavy enough (hundreds of thousands of instructions) that a canary
/// under a pathological deadline policy fails deterministically rather
/// than racing the watchdog, yet still well under a second per shard.
const CANARY_SPEC: &str = r#"{"workload":"ycsb-a","controller":"baryon","insts":400000,"warmup":20000,"scale":2048,"seed":1}"#;

fn canary(shared: &Arc<FleetShared>, index: usize) -> Result<(), String> {
    let client = Client::new(shared.shards.addr(index))
        .connect_timeout(Duration::from_millis(500))
        .read_timeout(Duration::from_secs(10));
    let accepted = client
        .request("POST", "/v1/jobs", Some(CANARY_SPEC))
        .map_err(|e| format!("canary submit failed: {e}"))
        .and_then(|r| shared.verify_reply(r).map_err(|e| e.to_string()))?
        .into_result()
        .map_err(|e| format!("canary submit rejected: {e}"))?;
    let id = json::parse(&accepted.body)
        .ok()
        .as_ref()
        .and_then(|doc| get_u64(doc, "id"))
        .ok_or_else(|| "canary 202 body unreadable".to_owned())?;
    let deadline = Instant::now() + env_ms("BARYON_FLEET_CANARY_TIMEOUT_MS", 30_000);
    loop {
        let record = client
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .ok()
            .and_then(|r| shared.verify_reply(r).ok())
            .and_then(|r| r.into_result().ok())
            .and_then(|r| json::parse(&r.body).ok());
        if let Some(record) = record {
            match get_str(&record, "state") {
                Some("done") => return Ok(()),
                Some("failed") => {
                    return Err(format!(
                        "canary failed under the new config: {}",
                        get_str(&record, "error").unwrap_or("no error detail")
                    ))
                }
                _ => {}
            }
        }
        if Instant::now() >= deadline {
            return Err("canary never settled".to_owned());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// `GET /v1/metrics` — one registry for the whole fleet: coordinator
/// counters under `fleet.*`, plus every reachable shard's full-fidelity
/// wire registry absorbed under `shard<i>.`. The merge starts from a
/// fresh registry each scrape, so a restarted shard's counters replace
/// (not double-count) its previous incarnation's.
fn metrics_response(shared: &Arc<FleetShared>, _query: &str) -> Response {
    let mut reg = Registry::new();
    let m = &shared.metrics;
    reg.set_counter("fleet.jobs.submitted", m.submitted.load(Ordering::Relaxed));
    reg.set_counter(
        "fleet.jobs.rejected_quota",
        m.rejected_quota.load(Ordering::Relaxed),
    );
    reg.set_counter(
        "fleet.jobs.rejected_queue",
        m.rejected_queue.load(Ordering::Relaxed),
    );
    reg.set_counter("fleet.jobs.done", m.done.load(Ordering::Relaxed));
    reg.set_counter("fleet.jobs.failed", m.failed.load(Ordering::Relaxed));
    reg.set_counter("fleet.jobs.cancelled", m.cancelled.load(Ordering::Relaxed));
    reg.set_counter(
        "fleet.dispatch.requeued",
        m.redispatched.load(Ordering::Relaxed),
    );
    reg.set_counter("fleet.shards.total", shared.shards.len() as u64);
    reg.set_counter("fleet.shards.restarts", shared.shards.restarts());
    reg.set_gauge(
        "fleet.shards.quarantined",
        shared.shards.quarantined_count() as f64,
    );
    reg.set_counter("fleet.cells.failover", m.failover.load(Ordering::Relaxed));
    reg.set_counter(
        "fleet.shard.reply_errors",
        m.reply_errors.load(Ordering::Relaxed),
    );
    reg.set_counter(
        "fleet.config.quarantined_results",
        m.quarantined_results.load(Ordering::Relaxed),
    );
    {
        let machine = shared.config.lock().expect("config lock poisoned");
        reg.set_gauge(
            "fleet.config.generation",
            machine.active().1.generation as f64,
        );
        reg.set_counter("fleet.config.rollbacks", machine.rollbacks());
    }
    for i in 0..shared.shards.len() {
        reg.set_gauge(
            &format!("fleet.shard{i}.respawn_backoff_ms"),
            shared.shards.respawn_backoff_ms(i) as f64,
        );
    }
    let (interactive, batch) = shared.queue.depths();
    reg.set_counter("fleet.queue.interactive_depth", interactive as u64);
    reg.set_counter("fleet.queue.batch_depth", batch as u64);
    let mut unreachable = 0;
    for i in 0..shared.shards.len() {
        let fetched = Client::new(shared.shards.addr(i))
            .connect_timeout(Duration::from_millis(500))
            .read_timeout(Duration::from_secs(5))
            .request("GET", "/v1/metrics?format=wire", None)
            .ok()
            .and_then(|r| shared.verify_reply(r).ok())
            .and_then(|r| r.into_result().ok())
            .and_then(|r| json::parse(&r.body).ok())
            .and_then(|doc| get_str(&doc, "wire").map(str::to_owned))
            .and_then(|hex| wire::from_hex(&hex).ok())
            .and_then(|bytes| {
                let mut reader = wire::Reader::new(&bytes);
                Registry::load_state(&mut reader).ok()
            });
        match fetched {
            Some(shard_reg) => reg.absorb(&format!("shard{i}"), &shard_reg),
            None => unreachable += 1,
        }
    }
    reg.set_counter("fleet.shards.unreachable", unreachable);
    Response::json(200, &reg.to_json())
}

fn shutdown(shared: &Arc<FleetShared>) -> Response {
    let (interactive, batch) = shared.queue.depths();
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.queue.close();
    let _ = TcpStream::connect(shared.addr);
    Response::json(
        200,
        &Json::obj([
            ("ok", Json::Bool(true)),
            ("draining", Json::from((interactive + batch) as u64)),
        ]),
    )
}

/// How many empty 500 ms waits between `alive` heartbeats on an idle
/// fleet event stream.
const STREAM_HEARTBEAT_WAITS: u32 = 20;

/// Streams a fleet job's events. Batch jobs synthesize `progress` from
/// the coordinator's cell bookkeeping; single runs proxy the executing
/// shard's own event stream with the shard-local ID rewritten to the
/// fleet ID (and a monotonicity filter so a shard restart's replayed
/// early events never reach the client out of order).
fn stream_fleet_events(
    shared: &Arc<FleetShared>,
    id: u64,
    writer: &mut TcpStream,
) -> io::Result<()> {
    let mut stream = ChunkedWriter::begin(&mut *writer, 200, &[])?;
    let mut last_seq = 0;
    let mut last_ops = 0;
    let mut idle_waits = 0;
    loop {
        let Some(job) = shared.board.get(id) else {
            return end_event(stream, id, "evicted");
        };
        if job.state.is_settled() {
            return end_event(stream, id, job.state.as_str());
        }
        // A dispatched single run proxies the shard's stream directly —
        // live simulator progress, not 100 ms polling granularity.
        if let FleetJobKind::Single {
            shard,
            cell: CellState::Dispatched { remote, .. },
        } = &job.kind
        {
            proxy_single_stream(shared, id, *shard, *remote, &mut stream, &mut last_ops)?;
            // The shard's stream ended (job settled there, or the shard
            // died mid-run). Loop: the poller lands the result, or the
            // restarted shard's resumed job re-opens above.
            std::thread::sleep(Duration::from_millis(100));
            continue;
        }
        // Queued singles and batches watch the coordinator's own board.
        if let Some(p) = shared.progress.get(id) {
            if p.seq > last_seq {
                last_seq = p.seq;
                idle_waits = 0;
                let mut line = p.to_json(id).render();
                line.push('\n');
                stream.chunk(line.as_bytes())?;
            }
        }
        if shared
            .progress
            .wait_past(id, last_seq, Duration::from_millis(500))
            .is_none()
        {
            idle_waits += 1;
            if idle_waits >= STREAM_HEARTBEAT_WAITS {
                idle_waits = 0;
                let mut line =
                    Json::obj([("event", Json::from("alive")), ("id", Json::from(id))]).render();
                line.push('\n');
                stream.chunk(line.as_bytes())?;
            }
        }
    }
}

fn end_event(mut stream: ChunkedWriter<&mut TcpStream>, id: u64, state: &str) -> io::Result<()> {
    let mut line = Json::obj([
        ("event", Json::from("end")),
        ("id", Json::from(id)),
        ("state", Json::from(state)),
    ])
    .render();
    line.push('\n');
    stream.chunk(line.as_bytes())?;
    stream.finish()
}

/// Follows one shard-local event stream, forwarding `progress` and
/// `alive` events with the ID rewritten to the fleet ID. The shard's own
/// `end` event is swallowed — the fleet-level end comes from the board
/// once the poller lands the result. Returns when the shard stream closes
/// or errors (the caller re-checks the board and reconnects).
fn proxy_single_stream(
    shared: &Arc<FleetShared>,
    fleet_id: u64,
    shard: usize,
    remote: u64,
    stream: &mut ChunkedWriter<&mut TcpStream>,
    last_ops: &mut u64,
) -> io::Result<()> {
    let mut write_error: Option<io::Error> = None;
    let outcome = Client::new(shared.shards.addr(shard))
        .connect_timeout(Duration::from_millis(500))
        .read_timeout(Duration::from_secs(30))
        .stream(&format!("/v1/jobs/{remote}/events"), &mut |line| {
            if write_error.is_some() {
                return; // client is gone; drain the shard stream quietly
            }
            let Ok(mut doc) = json::parse(line) else {
                return;
            };
            match get_str(&doc, "event") {
                Some("progress") => {
                    // After a shard restart the resumed run replays from
                    // its checkpoint; drop anything at or behind what the
                    // client already saw so `ops` stays strictly monotonic.
                    let ops = get_u64(&doc, "ops").unwrap_or(0);
                    if ops <= *last_ops {
                        return;
                    }
                    *last_ops = ops;
                }
                Some("alive") => {}
                _ => return, // `end` (and anything unknown) is not forwarded
            }
            set_field(&mut doc, "id", Json::from(fleet_id));
            let mut text = doc.render();
            text.push('\n');
            if let Err(e) = stream.chunk(text.as_bytes()) {
                write_error = Some(e);
            }
        });
    if let Some(e) = write_error {
        return Err(e); // the streaming client hung up
    }
    // Shard-side errors (404 from a journal-less restart, connection
    // drop mid-restart) are not fatal to the fleet stream — the caller
    // loops and reconnects.
    let _ = outcome;
    Ok(())
}

/// Looks up `key` in a JSON object.
fn obj_get<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// `key` as a non-negative integer.
fn get_u64(doc: &Json, key: &str) -> Option<u64> {
    match obj_get(doc, key)? {
        Json::U64(n) => Some(*n),
        Json::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// `key` as a string.
fn get_str<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    match obj_get(doc, key)? {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Replaces (or appends) `key` in a JSON object.
fn set_field(doc: &mut Json, key: &str, value: Json) {
    if let Json::Obj(pairs) = doc {
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => pairs.push((key.to_owned(), value)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_field_helpers() {
        let mut doc = json::parse(r#"{"id":3,"state":"done","ops":42}"#).expect("valid");
        assert_eq!(get_u64(&doc, "id"), Some(3));
        assert_eq!(get_str(&doc, "state"), Some("done"));
        assert_eq!(get_u64(&doc, "missing"), None);
        assert_eq!(get_str(&doc, "id"), None, "wrong type is None");
        set_field(&mut doc, "id", Json::from(9u64));
        set_field(&mut doc, "extra", Json::Bool(true));
        assert_eq!(get_u64(&doc, "id"), Some(9));
        assert_eq!(
            doc.render(),
            r#"{"id":9,"state":"done","ops":42,"extra":true}"#
        );
        // Non-objects are left alone.
        let mut arr = Json::Arr(vec![]);
        set_field(&mut arr, "id", Json::Null);
        assert_eq!(arr, Json::Arr(vec![]));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = FleetConfig::default();
        assert!(cfg.shards > 0);
        assert!(cfg.queue_cap >= cfg.shard_queue_depth);
        assert!(cfg.max_in_flight_per_client > 0);
    }
}

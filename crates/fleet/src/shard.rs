//! Worker-shard processes: spawn, health-check, kill, restart.
//!
//! A shard is any child process that accepts `baryon-serve`-style flags
//! (`--port=0 --workers=N --queue-depth=N --journal-dir=DIR`) and prints
//! `ADDR <socket-addr>` on stdout once its listener is bound — both
//! `baryon-cli serve` and the self-forking test gates speak this
//! contract. Every shard gets its own journal directory, so a restarted
//! shard replays its journal, re-enqueues never-started jobs, and resumes
//! interrupted runs from their checkpoints; the coordinator's pollers
//! simply keep polling the same shard-local job IDs at the new address.

use baryon_serve::client::Client;
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a shard process is launched. `prefix_args` come before the
/// standard serve flags (e.g. `["serve"]` for `baryon-cli`, or
/// `["--shard"]` for a self-forking gate binary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLauncher {
    /// The executable to spawn.
    pub program: PathBuf,
    /// Arguments before the standard serve flags.
    pub prefix_args: Vec<String>,
    /// Worker threads per shard.
    pub workers: usize,
    /// Bounded queue depth per shard.
    pub queue_depth: usize,
    /// Fleet-policy file every shard loads at boot (`--policy=PATH`);
    /// `None` runs the built-in baseline. Per-shard overrides during a
    /// rolling restart go through [`ShardSet::restart_with_policy`].
    pub policy_path: Option<PathBuf>,
    /// Extra environment variables for the child process. Chaos gates use
    /// this to scope `BARYON_CHAOS_*` fault injection to the shard
    /// processes only, keeping the coordinator itself on clean I/O.
    pub extra_env: Vec<(String, String)>,
}

impl ShardLauncher {
    /// Spawns one shard and waits for its `ADDR <addr>` line.
    ///
    /// # Errors
    ///
    /// Spawn failures, or `InvalidData` if the child exits (or closes
    /// stdout) before announcing its address.
    fn spawn(
        &self,
        journal_dir: &Path,
        policy_path: Option<&Path>,
    ) -> io::Result<(Child, SocketAddr)> {
        let mut command = Command::new(&self.program);
        command
            .args(&self.prefix_args)
            .arg("--port=0")
            .arg(format!("--workers={}", self.workers))
            .arg(format!("--queue-depth={}", self.queue_depth))
            .arg(format!("--journal-dir={}", journal_dir.display()));
        if let Some(path) = policy_path {
            command.arg(format!("--policy={}", path.display()));
        }
        for (key, value) in &self.extra_env {
            command.env(key, value);
        }
        let mut child = command
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .spawn()?;
        let stdout = child.stdout.take().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::BrokenPipe,
                "shard stdout pipe missing despite Stdio::piped",
            )
        })?;
        let mut reader = BufReader::new(stdout);
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "shard exited before announcing ADDR",
                ));
            }
            if let Some(addr) = line.trim().strip_prefix("ADDR ") {
                let addr: SocketAddr = addr.parse().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("shard announced a malformed address {addr:?}: {e}"),
                    )
                })?;
                // Keep draining stdout so the shard never blocks on a full
                // pipe; its output is banner noise once ADDR is out.
                std::thread::spawn(move || {
                    let mut sink = io::sink();
                    let _ = io::copy(&mut reader, &mut sink);
                });
                return Ok((child, addr));
            }
        }
    }
}

/// One live shard slot.
struct Shard {
    child: Child,
    addr: SocketAddr,
    /// Bumps on every restart; lets concurrent observers tell incarnations
    /// apart.
    generation: u64,
    /// Consecutive failed health probes (reset on success).
    health_failures: u32,
    /// Policy file this incarnation booted with (may diverge from the
    /// launcher's during a rolling rollout); respawns reuse it.
    policy_path: Option<PathBuf>,
    /// Paused shards are skipped by the supervisor and receive no new
    /// dispatches — the rollout engine pauses a shard while draining it.
    paused: bool,
    /// Supervisor-driven respawns within [`RESPAWN_WINDOW`] of each other
    /// (a crash loop); resets once the shard stays up past the window.
    consecutive_respawns: u32,
    /// When the last supervisor-driven respawn happened.
    last_respawn: Option<Instant>,
    /// Crash-loop backoff: the supervisor will not respawn before this.
    backoff_until: Option<Instant>,
    /// Quarantined shards exhausted their crash-loop budget: the
    /// supervisor stops respawning them and the coordinator routes
    /// around them. Only a deliberate
    /// [`ShardSet::restart_with_policy`] brings one back.
    quarantined: bool,
}

/// Consecutive health-probe failures before a live-but-wedged shard is
/// killed and restarted.
const MAX_HEALTH_FAILURES: u32 = 5;

/// Two respawns within this window count as a crash loop.
const RESPAWN_WINDOW: Duration = Duration::from_secs(10);

/// First crash-loop backoff step; doubles per consecutive respawn.
const BACKOFF_BASE_MS: u64 = 500;

/// Crash-loop backoff ceiling.
const BACKOFF_CAP_MS: u64 = 30_000;

/// Default crash-loop budget: this many supervisor respawns, each within
/// [`RESPAWN_WINDOW`] of the last, quarantine the shard. Overridable via
/// `BARYON_FLEET_QUARANTINE_AFTER` (`0` disables quarantine entirely).
const QUARANTINE_AFTER_DEFAULT: u32 = 8;

/// The crash-loop budget from `BARYON_FLEET_QUARANTINE_AFTER`, falling
/// back to [`QUARANTINE_AFTER_DEFAULT`] when unset or unparseable.
fn quarantine_after_from_env() -> u32 {
    std::env::var("BARYON_FLEET_QUARANTINE_AFTER")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(QUARANTINE_AFTER_DEFAULT)
}

/// Crash-loop backoff for the `consecutive`-th respawn of shard `index`:
/// exponential from [`BACKOFF_BASE_MS`], capped at [`BACKOFF_CAP_MS`],
/// plus a small deterministic jitter keyed on the shard index so a fleet
/// of crash-looping shards does not respawn in lockstep. The first
/// respawn (`consecutive == 0` or `1`) is immediate.
pub fn respawn_backoff(consecutive: u32, index: usize) -> Duration {
    if consecutive <= 1 {
        return Duration::ZERO;
    }
    let exp = (consecutive - 2).min(63);
    let base = BACKOFF_BASE_MS
        .saturating_mul(1u64 << exp.min(16))
        .min(BACKOFF_CAP_MS);
    let jitter = (index as u64 * 31 + consecutive as u64 * 17) % 100;
    Duration::from_millis(base + jitter)
}

/// What one [`ShardSet::restart`] attempt did.
enum RestartOutcome {
    /// A fresh incarnation is up.
    Restarted,
    /// Nothing happened (lost a race, or the respawn itself failed and
    /// the next tick will retry).
    Skipped,
    /// The shard exhausted its crash-loop budget and was retired.
    Quarantined,
}

/// The fleet's shard processes: fixed count, each supervised and restarted
/// in place (same index, same journal directory, fresh ephemeral port).
pub struct ShardSet {
    launcher: ShardLauncher,
    journal_root: PathBuf,
    slots: Vec<Mutex<Shard>>,
    restarts: AtomicU64,
    /// Crash-loop budget before a shard is quarantined (0 = never).
    quarantine_after: u32,
}

impl ShardSet {
    /// Spawns `count` shards under `journal_root/shard<i>/`.
    ///
    /// # Errors
    ///
    /// The first spawn or journal-directory failure; already-spawned
    /// shards are killed before returning.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn spawn(
        launcher: ShardLauncher,
        journal_root: &Path,
        count: usize,
    ) -> io::Result<ShardSet> {
        assert!(count > 0, "a fleet needs at least one shard");
        let mut slots = Vec::with_capacity(count);
        for i in 0..count {
            let dir = journal_root.join(format!("shard{i}"));
            std::fs::create_dir_all(&dir)?;
            match launcher.spawn(&dir, launcher.policy_path.as_deref()) {
                Ok((child, addr)) => slots.push(Mutex::new(Shard {
                    child,
                    addr,
                    generation: 0,
                    health_failures: 0,
                    policy_path: launcher.policy_path.clone(),
                    paused: false,
                    consecutive_respawns: 0,
                    last_respawn: None,
                    backoff_until: None,
                    quarantined: false,
                })),
                Err(e) => {
                    for slot in &slots {
                        let mut shard = slot.lock().expect("shard lock poisoned");
                        let _ = shard.child.kill();
                        let _ = shard.child.wait();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ShardSet {
            launcher,
            journal_root: journal_root.to_path_buf(),
            slots,
            restarts: AtomicU64::new(0),
            quarantine_after: quarantine_after_from_env(),
        })
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false — a spawned set has at least one shard.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The shard's current address (changes across restarts).
    pub fn addr(&self, index: usize) -> SocketAddr {
        self.slots[index].lock().expect("shard lock poisoned").addr
    }

    /// A typed client for the shard, with retries tuned for the
    /// coordinator's dispatch path (backpressure is expected under load).
    pub fn client(&self, index: usize) -> Client {
        Client::new(self.addr(index))
            .connect_timeout(Duration::from_millis(500))
            .read_timeout(Duration::from_secs(30))
            .retries(2)
            .backoff_base(Duration::from_millis(50))
    }

    /// Total restarts performed across all shards.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Pauses a shard: the supervisor leaves it alone and the coordinator
    /// stops dispatching to it. Used while the rollout engine drains and
    /// restarts the shard.
    pub fn pause(&self, index: usize) {
        self.slots[index]
            .lock()
            .expect("shard lock poisoned")
            .paused = true;
    }

    /// Resumes supervision and dispatch for a paused shard.
    pub fn unpause(&self, index: usize) {
        self.slots[index]
            .lock()
            .expect("shard lock poisoned")
            .paused = false;
    }

    /// Whether the shard is paused.
    pub fn is_paused(&self, index: usize) -> bool {
        self.slots[index]
            .lock()
            .expect("shard lock poisoned")
            .paused
    }

    /// Whether the shard has exhausted its crash-loop budget and been
    /// taken out of rotation.
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.slots[index]
            .lock()
            .expect("shard lock poisoned")
            .quarantined
    }

    /// How many shards are currently quarantined. Exported as the
    /// `fleet.shards.quarantined` gauge.
    pub fn quarantined_count(&self) -> u64 {
        self.slots
            .iter()
            .filter(|slot| slot.lock().expect("shard lock poisoned").quarantined)
            .count() as u64
    }

    /// The shard's remaining crash-loop backoff in milliseconds (0 when it
    /// is not backing off). Exported as `fleet.shard<i>.respawn_backoff_ms`.
    pub fn respawn_backoff_ms(&self, index: usize) -> u64 {
        let shard = self.slots[index].lock().expect("shard lock poisoned");
        shard.backoff_until.map_or(0, |until| {
            until
                .saturating_duration_since(Instant::now())
                .as_millis()
                .min(u128::from(u64::MAX)) as u64
        })
    }

    /// Chaos hook: SIGKILL the shard's current process. The supervisor's
    /// next tick restarts it (journal replay resumes its jobs).
    ///
    /// # Errors
    ///
    /// Propagates the kill failure (e.g. already reaped).
    pub fn kill(&self, index: usize) -> io::Result<()> {
        let mut shard = self.slots[index].lock().expect("shard lock poisoned");
        shard.child.kill()
    }

    /// One supervisor tick: restart exited shards, probe the rest, and
    /// kill-and-restart any shard failing [`MAX_HEALTH_FAILURES`]
    /// consecutive probes. A shard that blows through its crash-loop
    /// budget (`BARYON_FLEET_QUARANTINE_AFTER` rapid respawns) is
    /// quarantined instead of respawned again; the returned indices are
    /// the shards that were newly quarantined this tick, so the caller
    /// can fail their in-flight work over to healthy shards.
    pub fn check_and_restart(&self) -> Vec<usize> {
        let mut restarted = 0;
        let mut newly_quarantined = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            // Probe without holding the lock — a slow shard must not
            // block address lookups on the dispatch path.
            let (addr, generation, dead) = {
                let mut shard = slot.lock().expect("shard lock poisoned");
                if shard.paused || shard.quarantined {
                    continue; // owned by the rollout engine / out of rotation
                }
                if let Some(until) = shard.backoff_until {
                    if Instant::now() < until {
                        continue; // crash-looping; let the backoff elapse
                    }
                    shard.backoff_until = None;
                }
                let dead = matches!(shard.child.try_wait(), Ok(Some(_)));
                (shard.addr, shard.generation, dead)
            };
            let unhealthy = if dead {
                true
            } else {
                let probe = Client::new(addr)
                    .connect_timeout(Duration::from_millis(250))
                    .read_timeout(Duration::from_millis(500))
                    .healthz();
                let mut shard = slot.lock().expect("shard lock poisoned");
                if shard.generation != generation {
                    continue; // restarted concurrently; leave it be
                }
                match probe {
                    Ok(()) => {
                        shard.health_failures = 0;
                        false
                    }
                    Err(_) => {
                        shard.health_failures += 1;
                        shard.health_failures >= MAX_HEALTH_FAILURES
                    }
                }
            };
            if !unhealthy {
                continue;
            }
            match self.restart(i, generation) {
                RestartOutcome::Restarted => restarted += 1,
                RestartOutcome::Quarantined => newly_quarantined.push(i),
                RestartOutcome::Skipped => {}
            }
        }
        self.restarts.fetch_add(restarted, Ordering::Relaxed);
        newly_quarantined
    }

    /// Kills (if still alive) and respawns the shard on its journal
    /// directory, keeping its current policy file. Tracks crash loops:
    /// respawns landing within [`RESPAWN_WINDOW`] of the previous one arm
    /// an exponential backoff the supervisor honours before the next try,
    /// and once they exhaust the quarantine budget the shard is retired
    /// instead of respawned.
    fn restart(&self, index: usize, expected_generation: u64) -> RestartOutcome {
        let policy_path = {
            let mut shard = self.slots[index].lock().expect("shard lock poisoned");
            if shard.generation != expected_generation {
                return RestartOutcome::Skipped;
            }
            // Spend the crash-loop budget before paying for a spawn: if
            // this respawn would be the one that exhausts it, retire the
            // shard now — the coordinator re-dispatches its jobs.
            let now = Instant::now();
            let prospective = match shard.last_respawn {
                Some(last) if now.duration_since(last) < RESPAWN_WINDOW => {
                    shard.consecutive_respawns.saturating_add(1)
                }
                _ => 1,
            };
            if self.quarantine_after > 0 && prospective >= self.quarantine_after {
                shard.quarantined = true;
                let _ = shard.child.kill();
                let _ = shard.child.wait();
                eprintln!(
                    "baryon-fleet: shard {index} quarantined after {prospective} rapid respawns"
                );
                return RestartOutcome::Quarantined;
            }
            shard.policy_path.clone()
        };
        let dir = self.journal_root.join(format!("shard{index}"));
        let spawned = self.launcher.spawn(&dir, policy_path.as_deref());
        let mut shard = self.slots[index].lock().expect("shard lock poisoned");
        if shard.generation != expected_generation {
            // Lost the race; throw the extra child away.
            if let Ok((mut child, _)) = spawned {
                let _ = child.kill();
                let _ = child.wait();
            }
            return RestartOutcome::Skipped;
        }
        let _ = shard.child.kill();
        let _ = shard.child.wait();
        let now = Instant::now();
        shard.consecutive_respawns = match shard.last_respawn {
            Some(last) if now.duration_since(last) < RESPAWN_WINDOW => {
                shard.consecutive_respawns.saturating_add(1)
            }
            _ => 1,
        };
        shard.last_respawn = Some(now);
        let backoff = respawn_backoff(shard.consecutive_respawns, index);
        shard.backoff_until = if backoff.is_zero() {
            None
        } else {
            Some(now + backoff)
        };
        match spawned {
            Ok((child, addr)) => {
                shard.child = child;
                shard.addr = addr;
                shard.generation += 1;
                shard.health_failures = 0;
                RestartOutcome::Restarted
            }
            Err(e) => {
                // The old child is dead and the new one would not come up;
                // the next tick retries once the backoff elapses.
                eprintln!("baryon-fleet: shard {index} restart failed: {e}");
                RestartOutcome::Skipped
            }
        }
    }

    /// Rolling-rollout restart: politely shuts the shard down (it should
    /// be paused and drained first), respawns it with `policy_path`, and
    /// records that path for future supervisor respawns. Unlike the
    /// supervisor path this is deliberate, so it resets crash-loop
    /// accounting and does not count toward `fleet.shards.restarts`.
    ///
    /// # Errors
    ///
    /// The respawn failure; on error the old process is already gone and
    /// the slot keeps its previous address — the caller must either retry
    /// or roll the fleet back.
    pub fn restart_with_policy(
        &self,
        index: usize,
        policy_path: Option<PathBuf>,
    ) -> io::Result<()> {
        let mut shard = self.slots[index].lock().expect("shard lock poisoned");
        let _ = Client::new(shard.addr)
            .connect_timeout(Duration::from_millis(500))
            .read_timeout(Duration::from_secs(5))
            .request("POST", "/v1/shutdown", None);
        // Reap the old incarnation before touching the shared journal
        // directory — two writers on one journal is corruption.
        let _ = shard.child.kill();
        let _ = shard.child.wait();
        let dir = self.journal_root.join(format!("shard{index}"));
        // A rolling restart is a *planned* restart: the coordinator
        // drained the shard first, so every in-flight cell is already
        // accounted for upstream (landed, staged, or requeued). Start the
        // new incarnation on a clean journal — replaying the old one
        // would resurrect and re-run jobs the fleet already owns, and a
        // resurrected job can share an id with a fresh dispatch. Crash
        // respawns (`restart`) keep the journal: replay is exactly right
        // when nobody drained the shard.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir)?;
        let (child, addr) = self.launcher.spawn(&dir, policy_path.as_deref())?;
        shard.child = child;
        shard.addr = addr;
        shard.generation += 1;
        shard.health_failures = 0;
        shard.policy_path = policy_path;
        shard.consecutive_respawns = 0;
        shard.last_respawn = None;
        shard.backoff_until = None;
        // A deliberate operator-driven restart is the one path back into
        // rotation for a quarantined shard.
        shard.quarantined = false;
        Ok(())
    }

    /// Gracefully shuts every shard down (`POST /v1/shutdown`, then reap;
    /// kill on a deaf shard).
    pub fn shutdown(&self) {
        for slot in &self.slots {
            let mut shard = slot.lock().expect("shard lock poisoned");
            let polite = Client::new(shard.addr)
                .connect_timeout(Duration::from_millis(500))
                .read_timeout(Duration::from_secs(5))
                .request("POST", "/v1/shutdown", None)
                .is_ok();
            if !polite {
                let _ = shard.child.kill();
            }
            let _ = shard.child.wait();
        }
    }
}

impl Drop for ShardSet {
    fn drop(&mut self) {
        for slot in &self.slots {
            if let Ok(mut shard) = slot.lock() {
                let _ = shard.child.kill();
                let _ = shard.child.wait();
            }
        }
    }
}

/// Hash-routes a fleet job ID onto one of `shards` worker shards
/// (Fibonacci multiplicative hash — IDs are sequential, and a plain
/// modulo would stripe consecutive jobs onto consecutive shards, which is
/// fine, but hashing also spreads any strided submission pattern).
pub fn route(id: u64, shards: usize) -> usize {
    let mixed = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> 32) as usize % shards.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_stable_and_in_range() {
        for shards in 1..=8usize {
            for id in 0..1000u64 {
                let s = route(id, shards);
                assert!(s < shards);
                assert_eq!(s, route(id, shards), "same id, same shard");
            }
        }
    }

    #[test]
    fn route_spreads_sequential_ids() {
        let shards = 3;
        let mut counts = [0usize; 3];
        for id in 1..=300u64 {
            counts[route(id, shards)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 50, "shard {i} starved: {counts:?}");
        }
    }

    #[test]
    fn spawn_contract_rejects_a_silent_child() {
        // `true` exits immediately without printing ADDR.
        let launcher = ShardLauncher {
            program: PathBuf::from("/bin/true"),
            prefix_args: Vec::new(),
            workers: 1,
            queue_depth: 4,
            policy_path: None,
            extra_env: Vec::new(),
        };
        let dir = std::env::temp_dir().join("baryon-fleet-spawn-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let err = launcher
            .spawn(&dir, None)
            .expect_err("no ADDR line ever comes");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn quarantine_budget_reads_env_with_a_sane_default() {
        // No test in this binary sets the variable, so the default shows.
        assert_eq!(quarantine_after_from_env(), QUARANTINE_AFTER_DEFAULT);
        // One crash must never retire a shard.
        const _: () = assert!(QUARANTINE_AFTER_DEFAULT > 1);
    }

    #[test]
    fn backoff_is_zero_then_exponential_then_capped() {
        assert_eq!(respawn_backoff(0, 0), Duration::ZERO);
        assert_eq!(
            respawn_backoff(1, 0),
            Duration::ZERO,
            "first respawn is free"
        );
        let steps: Vec<u64> = (2..=10)
            .map(|c| respawn_backoff(c, 0).as_millis() as u64)
            .collect();
        assert!(
            steps[0] >= 500 && steps[0] < 600,
            "first backoff ~base: {steps:?}"
        );
        for pair in steps.windows(2) {
            assert!(pair[1] >= pair[0], "monotone: {steps:?}");
        }
        assert!(
            respawn_backoff(60, 0).as_millis() as u64 <= BACKOFF_CAP_MS + 100,
            "capped"
        );
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_spread_by_index() {
        for consecutive in 2..6 {
            for index in 0..4 {
                assert_eq!(
                    respawn_backoff(consecutive, index),
                    respawn_backoff(consecutive, index),
                    "deterministic"
                );
            }
        }
        assert_ne!(
            respawn_backoff(3, 0),
            respawn_backoff(3, 1),
            "different shards get different jitter"
        );
    }
}

//! Worker-shard processes: spawn, health-check, kill, restart.
//!
//! A shard is any child process that accepts `baryon-serve`-style flags
//! (`--port=0 --workers=N --queue-depth=N --journal-dir=DIR`) and prints
//! `ADDR <socket-addr>` on stdout once its listener is bound — both
//! `baryon-cli serve` and the self-forking test gates speak this
//! contract. Every shard gets its own journal directory, so a restarted
//! shard replays its journal, re-enqueues never-started jobs, and resumes
//! interrupted runs from their checkpoints; the coordinator's pollers
//! simply keep polling the same shard-local job IDs at the new address.

use baryon_serve::client::Client;
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How a shard process is launched. `prefix_args` come before the
/// standard serve flags (e.g. `["serve"]` for `baryon-cli`, or
/// `["--shard"]` for a self-forking gate binary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLauncher {
    /// The executable to spawn.
    pub program: PathBuf,
    /// Arguments before the standard serve flags.
    pub prefix_args: Vec<String>,
    /// Worker threads per shard.
    pub workers: usize,
    /// Bounded queue depth per shard.
    pub queue_depth: usize,
}

impl ShardLauncher {
    /// Spawns one shard and waits for its `ADDR <addr>` line.
    ///
    /// # Errors
    ///
    /// Spawn failures, or `InvalidData` if the child exits (or closes
    /// stdout) before announcing its address.
    fn spawn(&self, journal_dir: &Path) -> io::Result<(Child, SocketAddr)> {
        let mut child = Command::new(&self.program)
            .args(&self.prefix_args)
            .arg("--port=0")
            .arg(format!("--workers={}", self.workers))
            .arg(format!("--queue-depth={}", self.queue_depth))
            .arg(format!("--journal-dir={}", journal_dir.display()))
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut reader = BufReader::new(stdout);
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "shard exited before announcing ADDR",
                ));
            }
            if let Some(addr) = line.trim().strip_prefix("ADDR ") {
                let addr: SocketAddr = addr.parse().map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("shard announced a malformed address {addr:?}: {e}"),
                    )
                })?;
                // Keep draining stdout so the shard never blocks on a full
                // pipe; its output is banner noise once ADDR is out.
                std::thread::spawn(move || {
                    let mut sink = io::sink();
                    let _ = io::copy(&mut reader, &mut sink);
                });
                return Ok((child, addr));
            }
        }
    }
}

/// One live shard slot.
struct Shard {
    child: Child,
    addr: SocketAddr,
    /// Bumps on every restart; lets concurrent observers tell incarnations
    /// apart.
    generation: u64,
    /// Consecutive failed health probes (reset on success).
    health_failures: u32,
}

/// Consecutive health-probe failures before a live-but-wedged shard is
/// killed and restarted.
const MAX_HEALTH_FAILURES: u32 = 5;

/// The fleet's shard processes: fixed count, each supervised and restarted
/// in place (same index, same journal directory, fresh ephemeral port).
pub struct ShardSet {
    launcher: ShardLauncher,
    journal_root: PathBuf,
    slots: Vec<Mutex<Shard>>,
    restarts: AtomicU64,
}

impl ShardSet {
    /// Spawns `count` shards under `journal_root/shard<i>/`.
    ///
    /// # Errors
    ///
    /// The first spawn or journal-directory failure; already-spawned
    /// shards are killed before returning.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn spawn(
        launcher: ShardLauncher,
        journal_root: &Path,
        count: usize,
    ) -> io::Result<ShardSet> {
        assert!(count > 0, "a fleet needs at least one shard");
        let mut slots = Vec::with_capacity(count);
        for i in 0..count {
            let dir = journal_root.join(format!("shard{i}"));
            std::fs::create_dir_all(&dir)?;
            match launcher.spawn(&dir) {
                Ok((child, addr)) => slots.push(Mutex::new(Shard {
                    child,
                    addr,
                    generation: 0,
                    health_failures: 0,
                })),
                Err(e) => {
                    for slot in &slots {
                        let mut shard = slot.lock().expect("shard lock poisoned");
                        let _ = shard.child.kill();
                        let _ = shard.child.wait();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ShardSet {
            launcher,
            journal_root: journal_root.to_path_buf(),
            slots,
            restarts: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false — a spawned set has at least one shard.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The shard's current address (changes across restarts).
    pub fn addr(&self, index: usize) -> SocketAddr {
        self.slots[index].lock().expect("shard lock poisoned").addr
    }

    /// A typed client for the shard, with retries tuned for the
    /// coordinator's dispatch path (backpressure is expected under load).
    pub fn client(&self, index: usize) -> Client {
        Client::new(self.addr(index))
            .connect_timeout(Duration::from_millis(500))
            .read_timeout(Duration::from_secs(30))
            .retries(2)
            .backoff_base(Duration::from_millis(50))
    }

    /// Total restarts performed across all shards.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Chaos hook: SIGKILL the shard's current process. The supervisor's
    /// next tick restarts it (journal replay resumes its jobs).
    ///
    /// # Errors
    ///
    /// Propagates the kill failure (e.g. already reaped).
    pub fn kill(&self, index: usize) -> io::Result<()> {
        let mut shard = self.slots[index].lock().expect("shard lock poisoned");
        shard.child.kill()
    }

    /// One supervisor tick: restart exited shards, probe the rest, and
    /// kill-and-restart any shard failing [`MAX_HEALTH_FAILURES`]
    /// consecutive probes. Returns restarts performed this tick.
    pub fn check_and_restart(&self) -> u64 {
        let mut restarted = 0;
        for (i, slot) in self.slots.iter().enumerate() {
            // Probe without holding the lock — a slow shard must not
            // block address lookups on the dispatch path.
            let (addr, generation, dead) = {
                let mut shard = slot.lock().expect("shard lock poisoned");
                let dead = matches!(shard.child.try_wait(), Ok(Some(_)));
                (shard.addr, shard.generation, dead)
            };
            let unhealthy = if dead {
                true
            } else {
                let probe = Client::new(addr)
                    .connect_timeout(Duration::from_millis(250))
                    .read_timeout(Duration::from_millis(500))
                    .healthz();
                let mut shard = slot.lock().expect("shard lock poisoned");
                if shard.generation != generation {
                    continue; // restarted concurrently; leave it be
                }
                match probe {
                    Ok(()) => {
                        shard.health_failures = 0;
                        false
                    }
                    Err(_) => {
                        shard.health_failures += 1;
                        shard.health_failures >= MAX_HEALTH_FAILURES
                    }
                }
            };
            if !unhealthy {
                continue;
            }
            if self.restart(i, generation) {
                restarted += 1;
            }
        }
        self.restarts.fetch_add(restarted, Ordering::Relaxed);
        restarted
    }

    /// Kills (if still alive) and respawns the shard on its journal
    /// directory. Returns false if another restart got there first.
    fn restart(&self, index: usize, expected_generation: u64) -> bool {
        let dir = self.journal_root.join(format!("shard{index}"));
        let spawned = self.launcher.spawn(&dir);
        let mut shard = self.slots[index].lock().expect("shard lock poisoned");
        if shard.generation != expected_generation {
            // Lost the race; throw the extra child away.
            if let Ok((mut child, _)) = spawned {
                let _ = child.kill();
                let _ = child.wait();
            }
            return false;
        }
        let _ = shard.child.kill();
        let _ = shard.child.wait();
        match spawned {
            Ok((child, addr)) => {
                shard.child = child;
                shard.addr = addr;
                shard.generation += 1;
                shard.health_failures = 0;
                true
            }
            Err(e) => {
                // The old child is dead and the new one would not come up;
                // leave the slot for the next tick to retry.
                eprintln!("baryon-fleet: shard {index} restart failed: {e}");
                false
            }
        }
    }

    /// Gracefully shuts every shard down (`POST /v1/shutdown`, then reap;
    /// kill on a deaf shard).
    pub fn shutdown(&self) {
        for slot in &self.slots {
            let mut shard = slot.lock().expect("shard lock poisoned");
            let polite = Client::new(shard.addr)
                .connect_timeout(Duration::from_millis(500))
                .read_timeout(Duration::from_secs(5))
                .request("POST", "/v1/shutdown", None)
                .is_ok();
            if !polite {
                let _ = shard.child.kill();
            }
            let _ = shard.child.wait();
        }
    }
}

impl Drop for ShardSet {
    fn drop(&mut self) {
        for slot in &self.slots {
            if let Ok(mut shard) = slot.lock() {
                let _ = shard.child.kill();
                let _ = shard.child.wait();
            }
        }
    }
}

/// Hash-routes a fleet job ID onto one of `shards` worker shards
/// (Fibonacci multiplicative hash — IDs are sequential, and a plain
/// modulo would stripe consecutive jobs onto consecutive shards, which is
/// fine, but hashing also spreads any strided submission pattern).
pub fn route(id: u64, shards: usize) -> usize {
    let mixed = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> 32) as usize % shards.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_stable_and_in_range() {
        for shards in 1..=8usize {
            for id in 0..1000u64 {
                let s = route(id, shards);
                assert!(s < shards);
                assert_eq!(s, route(id, shards), "same id, same shard");
            }
        }
    }

    #[test]
    fn route_spreads_sequential_ids() {
        let shards = 3;
        let mut counts = [0usize; 3];
        for id in 1..=300u64 {
            counts[route(id, shards)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 50, "shard {i} starved: {counts:?}");
        }
    }

    #[test]
    fn spawn_contract_rejects_a_silent_child() {
        // `true` exits immediately without printing ADDR.
        let launcher = ShardLauncher {
            program: PathBuf::from("/bin/true"),
            prefix_args: Vec::new(),
            workers: 1,
            queue_depth: 4,
        };
        let dir = std::env::temp_dir().join("baryon-fleet-spawn-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let err = launcher.spawn(&dir).expect_err("no ADDR line ever comes");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }
}

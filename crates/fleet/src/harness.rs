//! Self-forking harness support for fleet binaries.
//!
//! The fleet's CI gates and benches are hermetic single binaries: the
//! same executable acts as the coordinator's parent process *and* — when
//! re-invoked with `--shard` — as a worker shard speaking the
//! [`crate::shard::ShardLauncher`] spawn contract (`--port=0
//! --workers=N --queue-depth=N --journal-dir=DIR`, then `ADDR <addr>` on
//! stdout). No pre-built `baryon-cli`, fixed ports, or startup sleeps.

use crate::shard::ShardLauncher;
use baryon_serve::{ServeConfig, Server};
use std::io;
use std::path::PathBuf;
use std::process::ExitCode;

/// When invoked as `<exe> --shard --port=... --workers=... ...`, runs a
/// `baryon-serve` shard to completion and returns its exit code; returns
/// `None` when this invocation is not shard mode (the caller proceeds as
/// the parent harness).
pub fn maybe_run_shard() -> Option<ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("--shard") {
        return None;
    }
    Some(run_shard(&args[1..]))
}

/// A launcher that re-invokes the current executable in `--shard` mode.
///
/// # Errors
///
/// Propagates `current_exe` resolution failures.
pub fn self_launcher(workers: usize, queue_depth: usize) -> io::Result<ShardLauncher> {
    Ok(ShardLauncher {
        program: std::env::current_exe()?,
        prefix_args: vec!["--shard".to_owned()],
        workers,
        queue_depth,
        policy_path: None,
        extra_env: Vec::new(),
    })
}

/// Parses `--key=value` shard flags onto a [`ServeConfig`].
///
/// # Errors
///
/// Describes the first malformed or unknown flag.
fn parse_shard_config(flags: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig {
        port: 0,
        ..ServeConfig::default()
    };
    for flag in flags {
        let Some((key, value)) = flag.split_once('=') else {
            return Err(format!("flags are --key=value, got {flag:?}"));
        };
        let ok = match key {
            "--port" => value.parse().map(|p| cfg.port = p).is_ok(),
            "--workers" => value.parse().map(|w| cfg.workers = w).is_ok(),
            "--queue-depth" => value.parse().map(|q| cfg.queue_depth = q).is_ok(),
            "--journal-dir" => {
                cfg.journal_dir = Some(PathBuf::from(value));
                true
            }
            "--policy" => {
                let policy = baryon_core::policy::FleetPolicy::load(std::path::Path::new(value))
                    .map_err(|e| format!("cannot load policy {value:?}: {e}"))?;
                cfg.policy = Some(policy);
                true
            }
            _ => return Err(format!("unknown flag {key:?}")),
        };
        if !ok {
            return Err(format!("cannot parse {flag:?}"));
        }
    }
    Ok(cfg)
}

fn run_shard(flags: &[String]) -> ExitCode {
    let cfg = match parse_shard_config(flags) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("shard mode: {e}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("shard cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Line-buffered stdout: the supervisor reads this line synchronously.
    println!("ADDR {}", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shard server error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_launcher_speaks_the_spawn_contract() {
        let launcher = self_launcher(2, 16).expect("current exe resolves");
        assert_eq!(launcher.prefix_args, ["--shard"]);
        assert_eq!(launcher.workers, 2);
        assert_eq!(launcher.queue_depth, 16);
        assert!(launcher.program.is_absolute());
    }

    #[test]
    fn shard_flags_parse_onto_serve_config() {
        let flags: Vec<String> = [
            "--port=0",
            "--workers=3",
            "--queue-depth=9",
            "--journal-dir=/tmp/j",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let cfg = parse_shard_config(&flags).expect("well-formed");
        assert_eq!(cfg.port, 0);
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_depth, 9);
        assert_eq!(
            cfg.journal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/j"))
        );
    }

    #[test]
    fn policy_flag_loads_and_validates_the_file() {
        let dir =
            std::env::temp_dir().join(format!("baryon-harness-policy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("policy.json");
        std::fs::write(&path, r#"{"generation":7,"scrub_interval":100000}"#).expect("write");
        let cfg = parse_shard_config(&[format!("--policy={}", path.display())]).expect("loads");
        let policy = cfg.policy.expect("policy set");
        assert_eq!(policy.generation, 7);
        assert_eq!(policy.scrub_interval, Some(100_000));
        // An invalid policy file is a parse error, not a panic.
        std::fs::write(&path, r#"{"commit_k":-1}"#).expect("write");
        let err = parse_shard_config(&[format!("--policy={}", path.display())])
            .expect_err("invalid policy");
        assert!(err.contains("cannot load policy"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_shard_flags_are_rejected() {
        for bad in ["--workers", "--workers=lots", "--turbo=1"] {
            let err = parse_shard_config(&[bad.to_owned()]).expect_err(bad);
            assert!(err.contains(bad.split('=').next().unwrap_or(bad)), "{err}");
        }
    }
}

//! Fairness under overload: per-client quotas and a two-level priority
//! queue at the coordinator.
//!
//! Two mechanisms keep a heavy client from starving everyone else:
//!
//! * **Per-client in-flight quotas** — each client (the `x-baryon-client`
//!   header, `anon` by default) may have at most K unsettled jobs at the
//!   coordinator; job K+1 gets `429 quota_exceeded` with `Retry-After`.
//! * **Two service classes** — `interactive` (single runs by default) and
//!   `batch` (grid sweeps by default), overridable via `x-baryon-class`.
//!   Dispatchers always drain interactive work first, and each class has
//!   its own bounded queue with its own `Retry-After` on overflow, so a
//!   full batch backlog never delays (or rejects) interactive jobs.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// The two service classes of the coordinator's dispatch queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Latency-sensitive: dispatched before any batch work.
    Interactive,
    /// Throughput work (grid sweeps); yields to interactive.
    Batch,
}

impl Class {
    /// The wire name (`interactive` / `batch`).
    pub fn as_str(self) -> &'static str {
        match self {
            Class::Interactive => "interactive",
            Class::Batch => "batch",
        }
    }

    /// Parses the `x-baryon-class` header value.
    pub fn parse(s: &str) -> Option<Class> {
        match s {
            "interactive" => Some(Class::Interactive),
            "batch" => Some(Class::Batch),
            _ => None,
        }
    }

    /// The `Retry-After` seconds a rejected submission of this class is
    /// told to wait: interactive queues drain fast, batch backlogs are
    /// long-lived by design.
    pub fn retry_after_secs(self) -> u64 {
        match self {
            Class::Interactive => 1,
            Class::Batch => 5,
        }
    }
}

/// Per-client in-flight job caps.
pub struct ClientQuotas {
    max_in_flight: usize,
    in_flight: Mutex<HashMap<String, usize>>,
}

impl ClientQuotas {
    /// A quota table allowing each client `max_in_flight` unsettled jobs.
    ///
    /// # Panics
    ///
    /// Panics if `max_in_flight` is zero (no job could ever be accepted).
    pub fn new(max_in_flight: usize) -> ClientQuotas {
        assert!(max_in_flight > 0, "quota must admit at least one job");
        ClientQuotas {
            max_in_flight,
            in_flight: Mutex::new(HashMap::new()),
        }
    }

    /// The configured cap.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Takes one slot for `client`; false when the client is at its cap.
    pub fn try_acquire(&self, client: &str) -> bool {
        let mut table = self.in_flight.lock().expect("quota lock poisoned");
        let count = table.entry(client.to_owned()).or_insert(0);
        if *count >= self.max_in_flight {
            return false;
        }
        *count += 1;
        true
    }

    /// Releases one slot for `client` (called when its job settles).
    pub fn release(&self, client: &str) {
        let mut table = self.in_flight.lock().expect("quota lock poisoned");
        if let Some(count) = table.get_mut(client) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                table.remove(client);
            }
        }
    }

    /// Current in-flight count for `client`.
    pub fn in_flight(&self, client: &str) -> usize {
        *self
            .in_flight
            .lock()
            .expect("quota lock poisoned")
            .get(client)
            .unwrap_or(&0)
    }
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The class's queue is at capacity; retry after the class's
    /// `Retry-After`.
    Full,
    /// The coordinator is shutting down.
    Closed,
}

struct Levels<T> {
    interactive: VecDeque<T>,
    batch: VecDeque<T>,
    closed: bool,
}

/// A two-level blocking queue: strict interactive-over-batch priority,
/// independent per-class capacity.
pub struct QosQueue<T> {
    levels: Mutex<Levels<T>>,
    available: Condvar,
    cap_per_class: usize,
}

impl<T> QosQueue<T> {
    /// A queue admitting up to `cap_per_class` items in each class.
    ///
    /// # Panics
    ///
    /// Panics if `cap_per_class` is zero.
    pub fn new(cap_per_class: usize) -> QosQueue<T> {
        assert!(cap_per_class > 0, "queue must admit at least one item");
        QosQueue {
            levels: Mutex::new(Levels {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cap_per_class,
        }
    }

    /// Enqueues into the class's level.
    ///
    /// # Errors
    ///
    /// [`QueueError::Full`] at the class cap, [`QueueError::Closed`] after
    /// [`QosQueue::close`].
    pub fn push(&self, class: Class, item: T) -> Result<(), QueueError> {
        let mut levels = self.levels.lock().expect("queue lock poisoned");
        if levels.closed {
            return Err(QueueError::Closed);
        }
        let level = match class {
            Class::Interactive => &mut levels.interactive,
            Class::Batch => &mut levels.batch,
        };
        if level.len() >= self.cap_per_class {
            return Err(QueueError::Full);
        }
        level.push_back(item);
        drop(levels);
        self.available.notify_one();
        Ok(())
    }

    /// Re-enqueues an item that was already admitted once (a dispatch
    /// retry), bypassing the class cap: the cap gates *new* admissions,
    /// and refusing a requeue would either lose the job or deadlock the
    /// dispatcher holding it against a full queue.
    ///
    /// # Errors
    ///
    /// Only [`QueueError::Closed`] after [`QosQueue::close`].
    pub fn requeue(&self, class: Class, item: T) -> Result<(), QueueError> {
        let mut levels = self.levels.lock().expect("queue lock poisoned");
        if levels.closed {
            return Err(QueueError::Closed);
        }
        let level = match class {
            Class::Interactive => &mut levels.interactive,
            Class::Batch => &mut levels.batch,
        };
        level.push_back(item);
        drop(levels);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next item — interactive first, batch only when the
    /// interactive level is empty. `None` once closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut levels = self.levels.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = levels.interactive.pop_front() {
                return Some(item);
            }
            if let Some(item) = levels.batch.pop_front() {
                return Some(item);
            }
            if levels.closed {
                return None;
            }
            levels = self.available.wait(levels).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: pushes fail, pops drain what is left then return
    /// `None`.
    pub fn close(&self) {
        self.levels.lock().expect("queue lock poisoned").closed = true;
        self.available.notify_all();
    }

    /// Current `(interactive, batch)` depths.
    pub fn depths(&self) -> (usize, usize) {
        let levels = self.levels.lock().expect("queue lock poisoned");
        (levels.interactive.len(), levels.batch.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_wire_round_trip() {
        for class in [Class::Interactive, Class::Batch] {
            assert_eq!(Class::parse(class.as_str()), Some(class));
        }
        assert_eq!(Class::parse("turbo"), None);
        assert!(Class::Interactive.retry_after_secs() < Class::Batch.retry_after_secs());
    }

    #[test]
    fn quotas_cap_and_release() {
        let quotas = ClientQuotas::new(2);
        assert!(quotas.try_acquire("alice"));
        assert!(quotas.try_acquire("alice"));
        assert!(!quotas.try_acquire("alice"), "third job exceeds the cap");
        assert!(quotas.try_acquire("bob"), "caps are per-client");
        quotas.release("alice");
        assert_eq!(quotas.in_flight("alice"), 1);
        assert!(quotas.try_acquire("alice"), "released slot is reusable");
        quotas.release("bob");
        assert_eq!(quotas.in_flight("bob"), 0, "empty entries are dropped");
        quotas.release("nobody"); // releasing an unknown client is a no-op
    }

    #[test]
    fn interactive_preempts_batch() {
        let q: QosQueue<u32> = QosQueue::new(8);
        q.push(Class::Batch, 1).expect("room");
        q.push(Class::Batch, 2).expect("room");
        q.push(Class::Interactive, 10).expect("room");
        q.push(Class::Interactive, 11).expect("room");
        assert_eq!(q.depths(), (2, 2));
        let order: Vec<u32> = (0..4).map(|_| q.pop().expect("item")).collect();
        assert_eq!(order, [10, 11, 1, 2], "interactive drains first");
    }

    #[test]
    fn per_class_caps_are_independent() {
        let q: QosQueue<u32> = QosQueue::new(1);
        q.push(Class::Batch, 1).expect("room");
        assert_eq!(q.push(Class::Batch, 2), Err(QueueError::Full));
        // A full batch level never blocks interactive admission.
        q.push(Class::Interactive, 3).expect("own cap");
        q.close();
        assert_eq!(q.push(Class::Interactive, 4), Err(QueueError::Closed));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn requeue_bypasses_the_cap_but_not_close() {
        let q: QosQueue<u32> = QosQueue::new(1);
        q.push(Class::Interactive, 1).expect("room");
        assert_eq!(q.push(Class::Interactive, 2), Err(QueueError::Full));
        q.requeue(Class::Interactive, 2)
            .expect("requeue ignores the cap");
        assert_eq!(q.depths(), (2, 0));
        q.close();
        assert_eq!(q.requeue(Class::Interactive, 3), Err(QueueError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_acquire_release_never_leaks_or_underflows() {
        let quotas = std::sync::Arc::new(ClientQuotas::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let quotas = std::sync::Arc::clone(&quotas);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        if quotas.try_acquire("shared") {
                            assert!(quotas.in_flight("shared") <= 4, "cap never overshoots");
                            quotas.release("shared");
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("no panic");
        }
        assert_eq!(quotas.in_flight("shared"), 0, "every slot returned");
        // A double release after the count hit zero must not underflow into
        // a huge in-flight value that blocks the client forever.
        quotas.release("shared");
        assert_eq!(quotas.in_flight("shared"), 0);
        assert!(quotas.try_acquire("shared"));
    }

    #[test]
    fn interactive_never_starves_behind_continuous_batch() {
        let q: QosQueue<u32> = QosQueue::new(256);
        // A deep standing batch backlog, refilled after every pop — the
        // batch level never goes empty, as under a saturating sweep.
        for i in 0..64 {
            q.push(Class::Batch, i).expect("room");
        }
        for round in 0..32 {
            q.push(Class::Interactive, 1000 + round).expect("room");
            q.push(Class::Batch, 100 + round).expect("room");
            let got = q.pop().expect("item");
            assert_eq!(
                got,
                1000 + round,
                "round {round}: the pending interactive item always pops first"
            );
        }
    }

    #[test]
    fn pop_wakes_on_push() {
        let q = std::sync::Arc::new(QosQueue::<u32>::new(4));
        let waiter = std::sync::Arc::clone(&q);
        let handle = std::thread::spawn(move || waiter.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(Class::Batch, 7).expect("room");
        assert_eq!(handle.join().expect("no panic"), Some(7));
    }
}

//! The A/B configuration slot machine: the pure core of fleet rollout.
//!
//! Two slots hold fleet policies. Exactly one is **active** at any time;
//! the other receives **staged** candidates. A commit begins a rollout
//! toward the staged slot; a rollback begins one toward the previous
//! slot. The machine only records *decisions and outcomes* — the
//! coordinator's rollout engine performs the actual rolling restarts and
//! reports back with [`SlotMachine::boot_succeeded`] /
//! [`SlotMachine::boot_failed`].
//!
//! Legal transitions only (enforced, property-tested in
//! `tests/config_props.rs`):
//!
//! ```text
//!           stage(policy)             begin_commit
//!   Empty ───────────────▶ Staged ─────────────────▶ (in flight)
//!                            ▲                          │ boot_succeeded
//!                            │ re-stage                 ▼
//!   Bad / Previous ──────────┘                        Active ──▶ Previous
//!                                                       ▲           │
//!                                                       └───────────┘
//!                                                      begin_rollback
//! ```
//!
//! * no commit without a staged slot;
//! * rollback only with a previous slot;
//! * at most one rollout in flight;
//! * a failed boot marks the slot **Bad** and leaves the active slot
//!   untouched — the active slot always holds a validated (or baseline)
//!   policy.

use baryon_core::config::ConfigError;
use baryon_core::policy::FleetPolicy;
use baryon_sim::json::Json;
use baryon_sim::wire::{Reader, WireError, Writer};

/// One of the two config slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Slot A (the boot-time active slot).
    A,
    /// Slot B.
    B,
}

impl Slot {
    /// The other slot.
    pub fn other(self) -> Slot {
        match self {
            Slot::A => Slot::B,
            Slot::B => Slot::A,
        }
    }

    /// The wire name (`"a"` / `"b"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Slot::A => "a",
            Slot::B => "b",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Slot> {
        match s {
            "a" => Some(Slot::A),
            "b" => Some(Slot::B),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            Slot::A => 0,
            Slot::B => 1,
        }
    }
}

/// What a slot currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Nothing yet.
    Empty,
    /// A validated candidate awaiting commit.
    Staged,
    /// The policy the fleet is serving under.
    Active,
    /// The previously active policy (the rollback target).
    Previous,
    /// The last rollout toward this slot failed; the candidate is kept
    /// for inspection but must be re-staged before another attempt.
    Bad,
}

impl SlotState {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            SlotState::Empty => "empty",
            SlotState::Staged => "staged",
            SlotState::Active => "active",
            SlotState::Previous => "previous",
            SlotState::Bad => "bad",
        }
    }

    fn tag(self) -> u8 {
        match self {
            SlotState::Empty => 0,
            SlotState::Staged => 1,
            SlotState::Active => 2,
            SlotState::Previous => 3,
            SlotState::Bad => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<SlotState, WireError> {
        Ok(match tag {
            0 => SlotState::Empty,
            1 => SlotState::Staged,
            2 => SlotState::Active,
            3 => SlotState::Previous,
            4 => SlotState::Bad,
            other => return Err(WireError::BadTag(other)),
        })
    }
}

/// Which direction an in-flight rollout is moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flight {
    /// Toward a freshly staged slot.
    Commit,
    /// Back toward the previous slot.
    Rollback,
}

/// One slot's contents.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotInfo {
    /// What the slot holds.
    pub state: SlotState,
    /// The config generation of the held policy (0 = baseline).
    pub generation: u64,
    /// The held policy; `None` only for [`SlotState::Empty`] or the
    /// boot-time baseline active slot.
    pub policy: Option<FleetPolicy>,
}

impl SlotInfo {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("state".to_owned(), Json::from(self.state.as_str())),
            ("generation".to_owned(), Json::U64(self.generation)),
        ];
        if let Some(policy) = &self.policy {
            pairs.push(("policy".to_owned(), policy.to_json()));
        }
        Json::Obj(pairs)
    }
}

/// Why a stage was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum StageError {
    /// The candidate failed [`FleetPolicy::validate`].
    Invalid(ConfigError),
    /// A commit or rollback is in flight; the slots are frozen.
    RolloutInFlight,
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::Invalid(e) => write!(f, "{e}"),
            StageError::RolloutInFlight => f.write_str("a rollout is in flight"),
        }
    }
}

/// Why a commit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitError {
    /// No staged candidate to commit.
    NothingStaged,
    /// A rollout is already in flight.
    RolloutInFlight,
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::NothingStaged => f.write_str("nothing staged; stage a config first"),
            CommitError::RolloutInFlight => f.write_str("a rollout is in flight"),
        }
    }
}

/// Why a rollback was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackError {
    /// No previous slot to roll back to.
    NoPrevious,
    /// A rollout is already in flight.
    RolloutInFlight,
}

impl std::fmt::Display for RollbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RollbackError::NoPrevious => f.write_str("no previous config to roll back to"),
            RollbackError::RolloutInFlight => f.write_str("a rollout is in flight"),
        }
    }
}

/// The pure A/B slot-state machine. All methods are total and never
/// panic; illegal requests return typed errors and leave the state
/// untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotMachine {
    slots: [SlotInfo; 2],
    in_flight: Option<(Slot, Flight)>,
    next_generation: u64,
    last_failed: Option<(Slot, u64)>,
    rollbacks: u64,
}

impl Default for SlotMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl SlotMachine {
    /// Boot state: slot A active at generation 0 (the built-in baseline),
    /// slot B empty.
    pub fn new() -> SlotMachine {
        SlotMachine {
            slots: [
                SlotInfo {
                    state: SlotState::Active,
                    generation: 0,
                    policy: None,
                },
                SlotInfo {
                    state: SlotState::Empty,
                    generation: 0,
                    policy: None,
                },
            ],
            in_flight: None,
            next_generation: 1,
            last_failed: None,
            rollbacks: 0,
        }
    }

    /// The active slot and its contents.
    pub fn active(&self) -> (Slot, &SlotInfo) {
        // Invariant: exactly one slot is Active.
        if self.slots[0].state == SlotState::Active {
            (Slot::A, &self.slots[0])
        } else {
            (Slot::B, &self.slots[1])
        }
    }

    /// A slot's contents.
    pub fn slot(&self, slot: Slot) -> &SlotInfo {
        &self.slots[slot.index()]
    }

    /// The in-flight rollout, if any.
    pub fn in_flight(&self) -> Option<(Slot, Flight)> {
        self.in_flight
    }

    /// Completed auto- and manual rollback count.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// The last slot whose rollout failed, with its generation.
    pub fn last_failed(&self) -> Option<(Slot, u64)> {
        self.last_failed
    }

    /// Validates `policy` and stages it into the non-active slot
    /// (overwriting any Staged / Previous / Bad / Empty contents there),
    /// assigning it the next config generation. Returns the slot and the
    /// assigned generation; the policy's `generation` field is stamped.
    ///
    /// # Errors
    ///
    /// [`StageError::Invalid`] for a policy that fails validation,
    /// [`StageError::RolloutInFlight`] while a rollout is running.
    pub fn stage(&mut self, mut policy: FleetPolicy) -> Result<(Slot, u64), StageError> {
        if self.in_flight.is_some() {
            return Err(StageError::RolloutInFlight);
        }
        policy.validate().map_err(StageError::Invalid)?;
        let (active, _) = self.active();
        let target = active.other();
        let generation = self.next_generation;
        self.next_generation += 1;
        policy.generation = generation;
        self.slots[target.index()] = SlotInfo {
            state: SlotState::Staged,
            generation,
            policy: Some(policy),
        };
        Ok((target, generation))
    }

    /// Begins a rollout toward the staged slot. Returns the slot and its
    /// generation; the caller performs the rolling restart and reports
    /// back via [`SlotMachine::boot_succeeded`] /
    /// [`SlotMachine::boot_failed`].
    ///
    /// # Errors
    ///
    /// [`CommitError::NothingStaged`] without a staged candidate,
    /// [`CommitError::RolloutInFlight`] while one is running.
    pub fn begin_commit(&mut self) -> Result<(Slot, u64), CommitError> {
        if self.in_flight.is_some() {
            return Err(CommitError::RolloutInFlight);
        }
        let (active, _) = self.active();
        let target = active.other();
        if self.slots[target.index()].state != SlotState::Staged {
            return Err(CommitError::NothingStaged);
        }
        self.in_flight = Some((target, Flight::Commit));
        Ok((target, self.slots[target.index()].generation))
    }

    /// Begins a rollout back toward the previous slot.
    ///
    /// # Errors
    ///
    /// [`RollbackError::NoPrevious`] without a previous slot,
    /// [`RollbackError::RolloutInFlight`] while a rollout is running.
    pub fn begin_rollback(&mut self) -> Result<(Slot, u64), RollbackError> {
        if self.in_flight.is_some() {
            return Err(RollbackError::RolloutInFlight);
        }
        let (active, _) = self.active();
        let target = active.other();
        if self.slots[target.index()].state != SlotState::Previous {
            return Err(RollbackError::NoPrevious);
        }
        self.in_flight = Some((target, Flight::Rollback));
        Ok((target, self.slots[target.index()].generation))
    }

    /// The fleet finished its rolling restart onto the in-flight slot:
    /// it becomes Active, the old active slot becomes Previous. A no-op
    /// if no rollout is in flight.
    pub fn boot_succeeded(&mut self) {
        let Some((target, flight)) = self.in_flight.take() else {
            return;
        };
        let old_active = target.other();
        self.slots[old_active.index()].state = SlotState::Previous;
        self.slots[target.index()].state = SlotState::Active;
        if flight == Flight::Rollback {
            self.rollbacks += 1;
        }
    }

    /// The rolling restart failed (health probe or canary): the in-flight
    /// slot is marked Bad, the active slot stays untouched, and — for a
    /// commit — the auto-rollback that restored the fleet is counted. A
    /// no-op if no rollout is in flight.
    pub fn boot_failed(&mut self) {
        let Some((target, flight)) = self.in_flight.take() else {
            return;
        };
        let generation = self.slots[target.index()].generation;
        self.slots[target.index()].state = SlotState::Bad;
        self.last_failed = Some((target, generation));
        if flight == Flight::Commit {
            // The engine rolled already-restarted shards back onto the
            // active policy; that is one completed (auto) rollback.
            self.rollbacks += 1;
        }
    }

    /// The machine state as a JSON document (the `GET /v1/admin/config`
    /// body).
    pub fn to_json(&self) -> Json {
        let (active, info) = self.active();
        let mut pairs = vec![
            ("active_slot".to_owned(), Json::from(active.as_str())),
            ("active_generation".to_owned(), Json::U64(info.generation)),
            ("slot_a".to_owned(), self.slots[0].to_json()),
            ("slot_b".to_owned(), self.slots[1].to_json()),
            ("rollbacks".to_owned(), Json::U64(self.rollbacks)),
        ];
        // A staged candidate gets a per-knob diff against the active
        // policy, so `fleet admin status` shows exactly what a commit
        // would change before anyone pulls the trigger.
        let staged = &self.slots[active.other().index()];
        if staged.state == SlotState::Staged {
            if let Some(policy) = &staged.policy {
                let base = info.policy.clone().unwrap_or_default();
                let changes = policy
                    .diff_from(&base)
                    .into_iter()
                    .map(|(knob, from, to)| {
                        (
                            knob.to_owned(),
                            Json::obj([("from", Json::from(from)), ("to", Json::from(to))]),
                        )
                    })
                    .collect();
                pairs.push((
                    "staged_diff".to_owned(),
                    Json::obj([
                        ("from_generation", Json::U64(info.generation)),
                        ("to_generation", Json::U64(staged.generation)),
                        ("changes", Json::Obj(changes)),
                    ]),
                ));
            }
        }
        if let Some((slot, flight)) = self.in_flight {
            pairs.push((
                "in_flight".to_owned(),
                Json::obj([
                    ("slot", Json::from(slot.as_str())),
                    (
                        "direction",
                        Json::from(match flight {
                            Flight::Commit => "commit",
                            Flight::Rollback => "rollback",
                        }),
                    ),
                ]),
            ));
        }
        if let Some((slot, generation)) = self.last_failed {
            pairs.push((
                "last_failed".to_owned(),
                Json::obj([
                    ("slot", Json::from(slot.as_str())),
                    ("generation", Json::from(generation)),
                ]),
            ));
        }
        Json::Obj(pairs)
    }

    /// Serializes the machine over the wire codec (what the coordinator
    /// persists with `atomic_write`, so slots survive a restart). An
    /// in-flight rollout is deliberately NOT persisted: a coordinator
    /// that died mid-rollout reboots with the rollout abandoned and the
    /// slots as last durably recorded.
    pub fn save_state(&self, w: &mut Writer) {
        for slot in &self.slots {
            w.u8(slot.state.tag());
            w.u64(slot.generation);
            w.opt(slot.policy.is_some());
            if let Some(policy) = &slot.policy {
                policy.save_state(w);
            }
        }
        w.u64(self.next_generation);
        w.opt(self.last_failed.is_some());
        if let Some((slot, generation)) = self.last_failed {
            w.u8(slot.index() as u8);
            w.u64(generation);
        }
        w.u64(self.rollbacks);
    }

    /// Deserializes a machine written by [`SlotMachine::save_state`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on a truncated or malformed buffer, or one that does
    /// not hold exactly one active slot.
    pub fn load_state(r: &mut Reader<'_>) -> Result<SlotMachine, WireError> {
        let mut slots = Vec::with_capacity(2);
        for _ in 0..2 {
            let state = SlotState::from_tag(r.u8()?)?;
            let generation = r.u64()?;
            let policy = if r.opt()? {
                Some(FleetPolicy::load_state(r)?)
            } else {
                None
            };
            slots.push(SlotInfo {
                state,
                generation,
                policy,
            });
        }
        let next_generation = r.u64()?;
        let last_failed = if r.opt()? {
            let slot = match r.u8()? {
                0 => Slot::A,
                1 => Slot::B,
                other => return Err(WireError::BadTag(other)),
            };
            Some((slot, r.u64()?))
        } else {
            None
        };
        let rollbacks = r.u64()?;
        let machine = SlotMachine {
            slots: [slots.remove(0), slots.remove(0)],
            in_flight: None,
            next_generation,
            last_failed,
            rollbacks,
        };
        let actives = machine
            .slots
            .iter()
            .filter(|s| s.state == SlotState::Active)
            .count();
        if actives != 1 {
            return Err(WireError::BadTag(actives as u8));
        }
        Ok(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign() -> FleetPolicy {
        FleetPolicy {
            scrub_interval: Some(100_000),
            ..FleetPolicy::default()
        }
    }

    #[test]
    fn boot_state_is_baseline_active() {
        let m = SlotMachine::new();
        let (slot, info) = m.active();
        assert_eq!(slot, Slot::A);
        assert_eq!(info.generation, 0);
        assert!(info.policy.is_none());
        assert_eq!(m.slot(Slot::B).state, SlotState::Empty);
        assert_eq!(m.in_flight(), None);
    }

    #[test]
    fn stage_commit_rollback_happy_path() {
        let mut m = SlotMachine::new();
        let (slot, generation) = m.stage(benign()).expect("stages");
        assert_eq!(slot, Slot::B);
        assert_eq!(generation, 1);
        assert_eq!(
            m.slot(Slot::B).policy.as_ref().expect("held").generation,
            1,
            "the staged policy is stamped"
        );
        let (target, generation) = m.begin_commit().expect("commits");
        assert_eq!((target, generation), (Slot::B, 1));
        m.boot_succeeded();
        assert_eq!(m.active().0, Slot::B);
        assert_eq!(m.slot(Slot::A).state, SlotState::Previous);
        let (back, generation) = m.begin_rollback().expect("rolls back");
        assert_eq!((back, generation), (Slot::A, 0));
        m.boot_succeeded();
        assert_eq!(m.active().0, Slot::A);
        assert_eq!(m.active().1.generation, 0);
        assert_eq!(m.rollbacks(), 1);
    }

    #[test]
    fn illegal_transitions_are_typed_errors() {
        let mut m = SlotMachine::new();
        assert_eq!(m.begin_commit(), Err(CommitError::NothingStaged));
        assert_eq!(m.begin_rollback(), Err(RollbackError::NoPrevious));
        let bad = FleetPolicy {
            commit_k: Some(-1.0),
            ..FleetPolicy::default()
        };
        assert!(matches!(m.stage(bad), Err(StageError::Invalid(_))));
        m.stage(benign()).expect("stages");
        m.begin_commit().expect("commits");
        assert_eq!(
            m.stage(benign()).expect_err("frozen"),
            StageError::RolloutInFlight
        );
        assert_eq!(m.begin_commit(), Err(CommitError::RolloutInFlight));
        assert_eq!(m.begin_rollback(), Err(RollbackError::RolloutInFlight));
    }

    #[test]
    fn failed_commit_marks_bad_and_counts_the_auto_rollback() {
        let mut m = SlotMachine::new();
        m.stage(benign()).expect("stages");
        m.begin_commit().expect("commits");
        m.boot_failed();
        assert_eq!(m.active().0, Slot::A, "active slot untouched");
        assert_eq!(m.slot(Slot::B).state, SlotState::Bad);
        assert_eq!(m.last_failed(), Some((Slot::B, 1)));
        assert_eq!(m.rollbacks(), 1);
        // A bad slot must be re-staged before another commit.
        assert_eq!(m.begin_commit(), Err(CommitError::NothingStaged));
        let (slot, generation) = m.stage(benign()).expect("re-stages");
        assert_eq!((slot, generation), (Slot::B, 2));
    }

    #[test]
    fn json_names_slots_and_history() {
        let mut m = SlotMachine::new();
        m.stage(benign()).expect("stages");
        m.begin_commit().expect("commits");
        m.boot_failed();
        let text = m.to_json().render();
        for needle in [
            "\"active_slot\":\"a\"",
            "\"active_generation\":0",
            "\"slot_b\":{\"state\":\"bad\"",
            "\"last_failed\":{\"slot\":\"b\",\"generation\":1}",
            "\"rollbacks\":1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn staged_slot_gets_a_policy_diff_against_active() {
        let mut m = SlotMachine::new();
        m.stage(FleetPolicy {
            scrub_interval: Some(100_000),
            commit_k: Some(2.5),
            ..FleetPolicy::default()
        })
        .expect("stages");
        let text = m.to_json().render();
        for needle in [
            "\"staged_diff\":{\"from_generation\":0,\"to_generation\":1",
            "\"commit_k\":{\"from\":\"default\",\"to\":\"2.5\"}",
            "\"scrub_interval\":{\"from\":\"default\",\"to\":\"100000\"}",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // Once committed and booted the diff disappears (nothing staged).
        m.begin_commit().expect("commits");
        m.boot_succeeded();
        assert!(!m.to_json().render().contains("staged_diff"));
    }

    #[test]
    fn wire_round_trip_drops_in_flight() {
        let mut m = SlotMachine::new();
        m.stage(benign()).expect("stages");
        m.begin_commit().expect("commits");
        m.boot_succeeded();
        m.stage(benign()).expect("stages again");
        m.begin_commit().expect("commits");
        let mut w = Writer::new();
        m.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = SlotMachine::load_state(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(back.in_flight(), None, "in-flight rollouts are abandoned");
        let mut expect = m.clone();
        expect.in_flight = None;
        assert_eq!(back, expect);
    }
}

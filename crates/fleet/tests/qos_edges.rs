//! QoS and quota edge cases against a real fleet (coordinator + one
//! forked shard): quota release when a disconnected client's job
//! settles, `Retry-After` under simultaneous class-cap and quota
//! exhaustion (the 429 wins), and interactive starvation-freedom under
//! a saturating batch backlog.

use baryon_fleet::{Fleet, FleetConfig, FleetController, ShardLauncher};
use baryon_serve::client::Client;
use baryon_sim::json::{self, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn launcher(workers: usize, queue_depth: usize) -> ShardLauncher {
    ShardLauncher {
        program: PathBuf::from(env!("CARGO_BIN_EXE_fleet_gate")),
        prefix_args: vec!["--shard".to_owned()],
        workers,
        queue_depth,
        policy_path: None,
        extra_env: Vec::new(),
    }
}

struct Harness {
    addr: SocketAddr,
    controller: FleetController,
    server: Option<std::thread::JoinHandle<()>>,
    journal_root: PathBuf,
}

impl Harness {
    fn boot(tag: &str, cfg_queue_cap: usize, max_in_flight: usize) -> Harness {
        let journal_root = std::env::temp_dir().join(format!(
            "baryon-qos-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&journal_root);
        let fleet = Fleet::bind(
            FleetConfig {
                port: 0,
                shards: 1,
                workers_per_shard: 1,
                shard_queue_depth: 64,
                queue_cap: cfg_queue_cap,
                max_in_flight_per_client: max_in_flight,
                journal_root: journal_root.clone(),
            },
            launcher(1, 64),
        )
        .expect("fleet boots");
        let addr = fleet.local_addr();
        let controller = fleet.controller();
        let server = std::thread::spawn(move || {
            let _ = fleet.run();
        });
        Harness {
            addr,
            controller,
            server: Some(server),
            journal_root,
        }
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        let _ = Client::new(self.addr)
            .read_timeout(Duration::from_secs(10))
            .request("POST", "/v1/shutdown", None);
        if let Some(server) = self.server.take() {
            let _ = server.join();
        }
        let _ = std::fs::remove_dir_all(&self.journal_root);
    }
}

/// A raw HTTP exchange with custom headers (the typed client has no
/// header hook; quota identity rides on `x-baryon-client`). Returns
/// `(status, headers, body)`; dropping the stream afterwards is exactly
/// the "client disconnects" behaviour under test.
fn raw_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: qos\r\nConnection: close\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    writer.write_all(request.as_bytes()).expect("write");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut response_headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            response_headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let length: usize = response_headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .and_then(|(_, value)| value.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    (
        status,
        response_headers,
        String::from_utf8(body).expect("utf-8 body"),
    )
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn body_id(body: &str) -> u64 {
    let doc = json::parse(body).expect("json body");
    match &doc {
        Json::Obj(pairs) => pairs
            .iter()
            .find(|(k, _)| k == "id")
            .and_then(|(_, v)| match v {
                Json::U64(n) => Some(*n),
                _ => None,
            })
            .expect("id field"),
        _ => panic!("not an object: {body}"),
    }
}

fn job_state(addr: SocketAddr, id: u64) -> String {
    let response = Client::new(addr)
        .read_timeout(Duration::from_secs(10))
        .request("GET", &format!("/v1/jobs/{id}"), None)
        .expect("status fetch");
    let doc = json::parse(&response.body).expect("json");
    match &doc {
        Json::Obj(pairs) => pairs
            .iter()
            .find(|(k, _)| k == "state")
            .and_then(|(_, v)| match v {
                Json::Str(s) => Some(s.clone()),
                _ => None,
            })
            .unwrap_or_default(),
        _ => String::new(),
    }
}

fn await_state(addr: SocketAddr, id: u64, wanted: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let state = job_state(addr, id);
        if state == wanted {
            return;
        }
        assert!(
            state != "failed" || wanted == "failed",
            "job {id} failed while waiting for {wanted}"
        );
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {state:?} waiting for {wanted:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

const RUN: &str = r#"{"workload":"ycsb-a","controller":"simple","insts":20000,"warmup":2000,"scale":2048,"seed":3}"#;

#[test]
fn quota_releases_when_a_disconnected_clients_job_settles() {
    let h = Harness::boot("disconnect", 16, 1);
    // Pause the only shard so the first job deterministically stays in
    // flight (queued, requeueing) while we probe the quota.
    h.controller.pause_shard(0);
    let (status, _, body) = raw_request(
        h.addr,
        "POST",
        "/v1/jobs",
        &[("x-baryon-client", "ghost")],
        RUN,
    );
    assert_eq!(status, 202, "{body}");
    let id = body_id(&body);
    // The submitting connection is gone (raw_request dropped it) — the
    // fleet must keep the job AND keep the quota slot held.
    let (status, headers, body) = raw_request(
        h.addr,
        "POST",
        "/v1/jobs",
        &[("x-baryon-client", "ghost")],
        RUN,
    );
    assert_eq!(status, 429, "quota still held mid-job: {body}");
    assert!(body.contains("quota_exceeded"), "{body}");
    assert_eq!(
        header(&headers, "retry-after"),
        Some("1"),
        "interactive retry hint"
    );
    // Another client is unaffected.
    let (status, _, body) = raw_request(
        h.addr,
        "POST",
        "/v1/jobs",
        &[("x-baryon-client", "other")],
        RUN,
    );
    assert_eq!(status, 202, "quotas are per-client: {body}");
    // Let the fleet run the ghost's job to completion; the ghost never
    // reconnects to claim it.
    h.controller.unpause_shard(0);
    await_state(h.addr, id, "done");
    // The slot came back without any client-side action.
    let (status, _, body) = raw_request(
        h.addr,
        "POST",
        "/v1/jobs",
        &[("x-baryon-client", "ghost")],
        RUN,
    );
    assert_eq!(status, 202, "quota released on settle: {body}");
    let released = body_id(&body);
    await_state(h.addr, released, "done");
}

#[test]
fn quota_beats_queue_full_and_retry_after_matches_class() {
    let h = Harness::boot("retry-after", 2, 2);
    h.controller.pause_shard(0);
    // Client "q" fills its own quota (2 in flight).
    let mut ids = Vec::new();
    for _ in 0..2 {
        let (status, _, body) =
            raw_request(h.addr, "POST", "/v1/jobs", &[("x-baryon-client", "q")], RUN);
        assert_eq!(status, 202, "{body}");
        ids.push(body_id(&body));
    }
    // Saturate the interactive queue from other clients: with the shard
    // paused, dispatchers hold at most a couple of popped items, so a
    // bounded burst must hit `503 queue_full`.
    let mut saw_queue_full = false;
    for i in 0..20 {
        let client = format!("filler-{i}");
        let (status, headers, body) = raw_request(
            h.addr,
            "POST",
            "/v1/jobs",
            &[("x-baryon-client", &client)],
            RUN,
        );
        match status {
            202 => ids.push(body_id(&body)),
            503 => {
                assert!(body.contains("queue_full"), "{body}");
                assert_eq!(
                    header(&headers, "retry-after"),
                    Some("1"),
                    "interactive class hint on 503"
                );
                saw_queue_full = true;
                break;
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(saw_queue_full, "the interactive queue never filled");
    // Simultaneous exhaustion: client "q" is over quota AND the queue is
    // full — the quota answer (429) wins, with the class's retry hint.
    let (status, headers, body) =
        raw_request(h.addr, "POST", "/v1/jobs", &[("x-baryon-client", "q")], RUN);
    assert_eq!(status, 429, "quota beats queue_full: {body}");
    assert!(body.contains("quota_exceeded"), "{body}");
    assert_eq!(header(&headers, "retry-after"), Some("1"));
    // The same collision on the batch class advertises the batch hint.
    let (status, headers, body) = raw_request(
        h.addr,
        "POST",
        "/v1/jobs",
        &[("x-baryon-client", "q"), ("x-baryon-class", "batch")],
        RUN,
    );
    assert_eq!(status, 429, "{body}");
    assert_eq!(
        header(&headers, "retry-after"),
        Some("5"),
        "batch class hint on the 429"
    );
    // A batch submit from a fresh client sees its own (empty) class level:
    // the full interactive queue must not reject batch admission outright.
    let grid = r#"{"grid":{"workloads":["ycsb-a"],"controllers":["simple"],"insts":20000,"warmup":2000,"scale":2048,"seed":3}}"#;
    let (status, _, body) = raw_request(
        h.addr,
        "POST",
        "/v1/jobs",
        &[("x-baryon-client", "bulk")],
        grid,
    );
    assert_eq!(status, 202, "batch level admits independently: {body}");
    ids.push(body_id(&body));
    // Drain everything so shutdown is clean.
    h.controller.unpause_shard(0);
    for id in ids {
        await_state(h.addr, id, "done");
    }
}

#[test]
fn interactive_stays_live_under_saturating_batch_load() {
    let h = Harness::boot("starvation", 256, 64);
    // A standing batch backlog: several grids, all cells on the single
    // one-worker shard.
    let grid = r#"{"grid":{"workloads":["ycsb-a","pr.twi"],"controllers":["simple","baryon"],"insts":100000,"warmup":10000,"scale":1024,"seed":7}}"#;
    let mut batch_ids = Vec::new();
    for _ in 0..2 {
        let (status, _, body) = raw_request(
            h.addr,
            "POST",
            "/v1/jobs",
            &[("x-baryon-client", "bulk")],
            grid,
        );
        assert_eq!(status, 202, "{body}");
        batch_ids.push(body_id(&body));
    }
    // A latecomer interactive job must overtake the backlog.
    let (status, _, body) = raw_request(
        h.addr,
        "POST",
        "/v1/jobs",
        &[("x-baryon-client", "human")],
        RUN,
    );
    assert_eq!(status, 202, "{body}");
    let interactive = body_id(&body);
    await_state(h.addr, interactive, "done");
    let unfinished_batches = batch_ids
        .iter()
        .filter(|&&id| job_state(h.addr, id) != "done")
        .count();
    assert!(
        unfinished_batches > 0,
        "the batch backlog drained before the interactive job — grow the grid"
    );
    for id in batch_ids {
        await_state(h.addr, id, "done");
    }
}

//! Property tests of the A/B config slot machine: arbitrary sequences of
//! stage / commit / rollback / boot-outcome operations never reach an
//! illegal state, and the active slot always holds a validated (or
//! baseline) policy — on the in-repo `baryon_sim::check` harness.

use baryon_core::policy::FleetPolicy;
use baryon_fleet::config::{Flight, Slot, SlotMachine, SlotState};
use baryon_sim::check::{props, Gen};
use baryon_sim::wire::{Reader, Writer};

#[derive(Debug, Clone, Copy)]
enum Op {
    StageValid,
    StageInvalid,
    BeginCommit,
    BeginRollback,
    BootOk,
    BootFail,
}

fn gen_op(g: &mut Gen) -> Op {
    match g.choice(6) {
        0 => Op::StageValid,
        1 => Op::StageInvalid,
        2 => Op::BeginCommit,
        3 => Op::BeginRollback,
        4 => Op::BootOk,
        _ => Op::BootFail,
    }
}

/// A valid policy, varied so staged generations carry different payloads.
fn valid_policy(g: &mut Gen) -> FleetPolicy {
    let mut policy = FleetPolicy::default();
    match g.choice(4) {
        0 => policy.scrub_interval = Some(g.range(1_000, 1_000_000)),
        1 => policy.commit_all = Some(g.bool()),
        2 => policy.zero_opt = Some(g.bool()),
        _ => policy.checkpoint_every = Some(g.range(1_000, 100_000)),
    }
    policy
}

/// A policy that must fail validation.
fn invalid_policy(g: &mut Gen) -> FleetPolicy {
    let mut policy = FleetPolicy::default();
    if g.bool() {
        policy.commit_k = Some(-1.0);
    } else {
        policy.stage_ways = Some(0);
    }
    policy
}

/// The machine's structural invariants, checked after every operation.
fn check_invariants(m: &SlotMachine, highest_staged: u64) {
    let actives = [Slot::A, Slot::B]
        .iter()
        .filter(|&&s| m.slot(s).state == SlotState::Active)
        .count();
    assert_eq!(actives, 1, "exactly one active slot: {m:?}");

    for slot in [Slot::A, Slot::B] {
        let info = m.slot(slot);
        match info.state {
            SlotState::Empty => {
                assert!(info.policy.is_none(), "empty slot holds a policy: {m:?}");
            }
            SlotState::Active => {
                // The active slot always holds a validated config: either
                // the built-in baseline (generation 0, no overlay) or a
                // policy that passed `validate` when staged — re-validate
                // to prove it never mutated into something illegal.
                match &info.policy {
                    None => assert_eq!(info.generation, 0, "baseline is generation 0: {m:?}"),
                    Some(p) => {
                        assert_eq!(p.generation, info.generation, "stamp matches slot: {m:?}");
                        p.validate().expect("active policy always validates");
                    }
                }
            }
            SlotState::Staged | SlotState::Previous | SlotState::Bad => {
                if let Some(p) = &info.policy {
                    assert_eq!(p.generation, info.generation, "stamp matches slot: {m:?}");
                    p.validate()
                        .expect("held policies were validated at stage time");
                }
            }
        }
        assert!(
            info.generation <= highest_staged,
            "generation {} from the future (max staged {highest_staged}): {m:?}",
            info.generation
        );
    }

    if let Some((slot, _)) = m.in_flight() {
        assert_ne!(
            m.slot(slot).state,
            SlotState::Active,
            "a rollout never targets the active slot: {m:?}"
        );
    }
}

#[test]
fn arbitrary_op_sequences_never_reach_an_illegal_state() {
    props("slot_machine_invariants").cases(200).run(|g| {
        let mut m = SlotMachine::new();
        let mut highest_staged = 0u64;
        let mut last_active_generation = 0u64;
        let ops = g.range(1, 40);
        for _ in 0..ops {
            let op = gen_op(g);
            g.note(format!("{op:?}"));
            match op {
                Op::StageValid => {
                    let in_flight = m.in_flight().is_some();
                    match m.stage(valid_policy(g)) {
                        Ok((slot, generation)) => {
                            assert!(!in_flight, "stage must fail while in flight");
                            assert!(generation > highest_staged, "generations strictly increase");
                            highest_staged = generation;
                            assert_eq!(m.slot(slot).state, SlotState::Staged);
                        }
                        Err(_) => assert!(in_flight, "a valid stage only fails mid-rollout"),
                    }
                }
                Op::StageInvalid => {
                    let before = m.clone();
                    assert!(
                        m.stage(invalid_policy(g)).is_err(),
                        "invalid policies never stage"
                    );
                    assert_eq!(m, before, "failed stage leaves the machine untouched");
                }
                Op::BeginCommit => {
                    let staged_ready = m.in_flight().is_none()
                        && m.slot(m.active().0.other()).state == SlotState::Staged;
                    match m.begin_commit() {
                        Ok((slot, _)) => {
                            assert!(staged_ready, "commit requires a staged slot");
                            assert_eq!(m.in_flight(), Some((slot, Flight::Commit)));
                        }
                        Err(_) => assert!(!staged_ready, "a ready commit must start"),
                    }
                }
                Op::BeginRollback => {
                    let previous_ready = m.in_flight().is_none()
                        && m.slot(m.active().0.other()).state == SlotState::Previous;
                    match m.begin_rollback() {
                        Ok((slot, _)) => {
                            assert!(previous_ready, "rollback requires a previous slot");
                            assert_eq!(m.in_flight(), Some((slot, Flight::Rollback)));
                        }
                        Err(_) => assert!(!previous_ready, "a ready rollback must start"),
                    }
                }
                Op::BootOk => {
                    let target = m.in_flight().map(|(s, _)| s);
                    m.boot_succeeded();
                    if let Some(target) = target {
                        assert_eq!(m.active().0, target, "boot success activates the target");
                        last_active_generation = m.active().1.generation;
                    }
                    assert_eq!(m.in_flight(), None);
                }
                Op::BootFail => {
                    let target = m.in_flight().map(|(s, _)| s);
                    let active_before = m.active().0;
                    let rollbacks_before = m.rollbacks();
                    m.boot_failed();
                    if let Some(target) = target {
                        assert_eq!(
                            m.active().0,
                            active_before,
                            "a failed boot never moves the active slot"
                        );
                        assert_eq!(m.slot(target).state, SlotState::Bad);
                        assert_eq!(m.last_failed().map(|(s, _)| s), Some(target));
                        assert!(m.rollbacks() >= rollbacks_before);
                    }
                    assert_eq!(m.in_flight(), None);
                }
            }
            check_invariants(&m, highest_staged.max(1));
            assert_eq!(
                m.active().1.generation,
                last_active_generation,
                "active generation only moves on successful boots"
            );
        }

        // Whatever state the sequence reached must survive persistence
        // (modulo the in-flight marker, which is deliberately dropped).
        let mut w = Writer::new();
        m.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = SlotMachine::load_state(&mut r).expect("persisted state decodes");
        r.finish().expect("fully consumed");
        assert_eq!(back.in_flight(), None);
        assert_eq!(back.active().0, m.active().0);
        assert_eq!(back.active().1, m.active().1);
        assert_eq!(back.rollbacks(), m.rollbacks());
        assert_eq!(back.last_failed(), m.last_failed());
        check_invariants(&back, highest_staged.max(1));
    });
}

//! `kill_resume` — the crash-recovery CI gate.
//!
//! Proves the durability story end to end across a real process boundary:
//!
//! 1. compute the golden result of a run spec in-process,
//! 2. spawn a `baryon-serve` child bound to a journal directory and
//!    submit the same spec over HTTP,
//! 3. `SIGKILL` the child as soon as the job has written a checkpoint
//!    (so it dies mid-run, never gracefully),
//! 4. restart a child on the *same* journal directory,
//! 5. require the recovered job to finish with the byte-identical result
//!    document, and the metrics to report the recovery.
//!
//! The harness is its own server: invoked with `--child <dir>` it binds an
//! ephemeral port, prints `ADDR <addr>` and serves until killed. That
//! keeps the gate hermetic — no curl, no fixed ports, no sleep-based
//! synchronization with another binary's startup.
//!
//! ```text
//! cargo run --release -p baryon-serve --bin kill_resume
//! ```
//!
//! Exits non-zero with a diagnostic on any divergence; `scripts/ci.sh`
//! runs it as the crash-recovery gate.

use baryon_bench::spec::RunSpec;
use baryon_serve::client;
use baryon_serve::{ServeConfig, Server};
use baryon_sim::json::{parse, Json};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

/// Checkpoint cadence forced onto the children: small enough that the
/// first checkpoint lands within the first few percent of the run.
const CHECKPOINT_EVERY: &str = "10000";

const POLL: Duration = Duration::from_millis(5);
const DEADLINE: Duration = Duration::from_secs(120);

/// Long enough that the run cannot finish before the first checkpoint is
/// observed and the process killed (the full run takes seconds; the first
/// checkpoint lands in milliseconds).
fn gate_spec() -> RunSpec {
    RunSpec {
        workload: "ycsb-a".to_owned(),
        controller: "baryon".to_owned(),
        insts: 200_000,
        warmup: 40_000,
        scale: 1024,
        seed: 7,
        mlp: 1,
        telemetry: false,
        threads: 1,
    }
}

/// Child mode: serve on an ephemeral port until killed.
fn serve_child(dir: &Path) -> ExitCode {
    let server = match Server::bind(ServeConfig {
        port: 0,
        workers: 1,
        queue_depth: 8,
        journal_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("child cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Rust's stdout is line-buffered, so the parent sees this immediately.
    println!("ADDR {}", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("child server error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Spawns a child incarnation on `dir` and reads its bound address.
fn spawn_server(dir: &Path) -> Result<(Child, SocketAddr), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .arg("--child")
        .arg(dir)
        .env("BARYON_SERVE_CHECKPOINT_EVERY", CHECKPOINT_EVERY)
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn child: {e}"))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("read child address: {e}"))?;
    let addr = line
        .strip_prefix("ADDR ")
        .and_then(|a| a.trim().parse().ok())
        .ok_or_else(|| format!("child printed {line:?}, expected `ADDR <addr>`"))?;
    Ok((child, addr))
}

fn get(addr: SocketAddr, path: &str) -> Result<client::ClientResponse, String> {
    client::request(addr, "GET", path, None).map_err(|e| format!("GET {path}: {e}"))
}

/// Polls job 1 until it leaves `queued`/`running`, then requires `done`
/// and returns the full status body.
fn await_done(addr: SocketAddr) -> Result<String, String> {
    let deadline = Instant::now() + DEADLINE;
    loop {
        let r = get(addr, "/v1/jobs/1")?;
        if r.status != 200 {
            return Err(format!("job status {}: {}", r.status, r.body));
        }
        if r.body.contains("\"state\":\"queued\"") || r.body.contains("\"state\":\"running\"") {
            if Instant::now() > deadline {
                return Err(format!("job stuck: {}", r.body));
            }
            std::thread::sleep(POLL);
            continue;
        }
        if !r.body.contains("\"state\":\"done\"") {
            return Err(format!("job did not finish cleanly: {}", r.body));
        }
        return Ok(r.body);
    }
}

/// Extracts the rendered `"result"` object from a job-status body.
fn result_of(status_body: &str) -> Result<String, String> {
    let doc = parse(status_body).map_err(|e| format!("status is not JSON ({e}): {status_body}"))?;
    let Json::Obj(pairs) = doc else {
        return Err(format!("status is not an object: {status_body}"));
    };
    pairs
        .into_iter()
        .find(|(k, _)| k == "result")
        .map(|(_, v)| v.render())
        .ok_or_else(|| format!("no result in {status_body}"))
}

fn run_gate() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("baryon-kill-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = gate_spec();
    let golden = spec
        .execute()
        .map_err(|e| format!("golden run: {e}"))?
        .to_json()
        .render();

    // First incarnation: submit, wait for a checkpoint, kill -9.
    let (mut child, addr) = spawn_server(&dir)?;
    let accepted = client::request(addr, "POST", "/v1/jobs", Some(&spec.to_json().render()))
        .map_err(|e| format!("submit: {e}"))?;
    if accepted.status != 202 {
        return Err(format!("submit {}: {}", accepted.status, accepted.body));
    }
    let ckpt_dir = dir.join("ckpt-1");
    let deadline = Instant::now() + DEADLINE;
    loop {
        let has_checkpoint = std::fs::read_dir(&ckpt_dir)
            .map(|mut entries| entries.next().is_some())
            .unwrap_or(false);
        if has_checkpoint {
            break;
        }
        let status = get(addr, "/v1/jobs/1")?;
        if !status.body.contains("\"state\":\"queued\"")
            && !status.body.contains("\"state\":\"running\"")
        {
            return Err(format!(
                "job settled before the harness could interrupt it \
                 (raise insts or lower the checkpoint cadence): {}",
                status.body
            ));
        }
        if Instant::now() > deadline {
            return Err("no checkpoint appeared before the deadline".to_owned());
        }
        std::thread::sleep(POLL);
    }
    child.kill().map_err(|e| format!("SIGKILL child: {e}"))?;
    child.wait().map_err(|e| format!("reap child: {e}"))?;
    println!("killed mid-run with a checkpoint on disk; restarting on the same journal");

    // Second incarnation, same journal directory: the job must recover,
    // resume, and land on the golden result.
    let (mut child, addr) = spawn_server(&dir)?;
    let outcome = (|| {
        let status = await_done(addr)?;
        let recovered = result_of(&status)?;
        if recovered != golden {
            return Err(format!(
                "recovered result diverged from the uninterrupted run\n  golden:    {golden}\n  recovered: {recovered}"
            ));
        }
        let metrics = get(addr, "/v1/metrics")?;
        if !metrics.body.contains("\"serve.jobs.recovered\":1") {
            return Err(format!(
                "metrics do not report the recovery: {}",
                metrics.body
            ));
        }
        let r = client::request(addr, "POST", "/v1/shutdown", None)
            .map_err(|e| format!("shutdown: {e}"))?;
        if r.status != 200 {
            return Err(format!("shutdown {}: {}", r.status, r.body));
        }
        Ok(())
    })();
    if outcome.is_err() {
        let _ = child.kill();
    }
    child.wait().map_err(|e| format!("reap child: {e}"))?;
    outcome?;

    std::fs::remove_dir_all(&dir).map_err(|e| format!("cleanup {}: {e}", dir.display()))?;
    println!("kill-resume OK: recovered job matches the uninterrupted run byte-for-byte");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let [flag, dir] = args.as_slice() {
        if flag == "--child" {
            return serve_child(&PathBuf::from(dir));
        }
    }
    if !args.is_empty() {
        eprintln!("usage: kill_resume          (run the gate)\n       kill_resume --child DIR");
        return ExitCode::from(2);
    }
    match run_gate() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("kill-resume gate failed: {e}");
            ExitCode::FAILURE
        }
    }
}

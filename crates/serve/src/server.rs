//! The job server: accept loop, router, worker pool, metrics, shutdown.
//!
//! One thread accepts connections and hands each to a short-lived handler
//! thread; handlers parse requests and either answer immediately (status,
//! metrics) or enqueue work. A fixed pool of worker threads drains the
//! bounded queue and runs simulations via [`baryon_bench::spec::JobSpec`].
//! Backpressure is explicit: a full queue answers `503` with
//! `Retry-After`, never blocking the accept path.

use crate::error::ErrorCode;
use crate::http::{read_request, ChunkedWriter, Request, Response};
use crate::job::{CancelOutcome, JobRecord, JobState, JobTable};
use crate::journal::{recover, Journal, JournalEvent, RecoveredState};
use crate::progress::ProgressBoard;
use crate::queue::{BoundedQueue, PushError};
use baryon_bench::spec::{resume_from_with, GridSpec, JobSpec, RunSpec, CHECKPOINT_PREFIX};
use baryon_core::checkpoint::Checkpoint;
use baryon_core::policy::FleetPolicy;
use baryon_sim::histogram::Histogram;
use baryon_sim::json::{self, Json};
use baryon_sim::telemetry::Registry;
use baryon_sim::wire;
use std::io::{self, BufReader};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server construction knobs (the CLI's `serve` flags).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1; `0` asks the OS for an ephemeral port
    /// (useful in tests — read it back via [`Server::local_addr`]).
    pub port: u16,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it get `503`.
    pub queue_depth: usize,
    /// Per-job wall-clock budget. A job still running past this is marked
    /// `failed` with a timeout reason and its worker moves on to the next
    /// queued job; the stuck runner thread is abandoned (its late result
    /// is discarded). `None` lets jobs run unbounded.
    pub job_deadline: Option<Duration>,
    /// Directory for the write-ahead job journal and per-job checkpoints.
    /// When set, accepted jobs survive a crash: on the next bind with the
    /// same directory, settled jobs are re-installed with their journaled
    /// results, never-started jobs are re-enqueued, and interrupted
    /// single runs resume from their newest checkpoint. `None` keeps the
    /// server fully in-memory.
    pub journal_dir: Option<PathBuf>,
    /// Retain at most this many finished (done / failed / cancelled)
    /// jobs in the table; the oldest beyond it are evicted as new jobs
    /// settle. Queued and running jobs are never evicted.
    pub finished_cap: usize,
    /// The fleet policy this incarnation executes under. Controller
    /// overrides are overlaid onto every run; `job_deadline_ms` /
    /// `checkpoint_every` (when set) take precedence over the fields
    /// above; the policy's generation is stamped into results, metrics
    /// (`serve.policy.generation`) and the journal. `None` is the
    /// baseline and behaves exactly like earlier versions.
    pub policy: Option<FleetPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 8677,
            workers: 2,
            queue_depth: 16,
            job_deadline: None,
            journal_dir: None,
            finished_cap: 256,
            policy: None,
        }
    }
}

/// How many trace operations an interrupted-able (journaled) single run
/// executes between checkpoints; override with
/// `BARYON_SERVE_CHECKPOINT_EVERY`.
const DEFAULT_CHECKPOINT_EVERY: u64 = 20_000;

fn checkpoint_every_from_env() -> u64 {
    std::env::var("BARYON_SERVE_CHECKPOINT_EVERY")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CHECKPOINT_EVERY)
}

/// Serve-layer counters, exported uniformly through the unified
/// [`baryon_sim::telemetry::Registry`] so grid/report tooling can consume
/// them like any simulator component's counters.
#[derive(Default)]
pub struct Metrics {
    requests: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    panicked: AtomicU64,
    cancelled: AtomicU64,
    recovered: AtomicU64,
    runs_executed: AtomicU64,
    ckpt_quarantined: AtomicU64,
    busy: AtomicUsize,
    latency_us: Mutex<Histogram>,
}

impl Metrics {
    fn record_latency(&self, us: u64) {
        self.latency_us
            .lock()
            .expect("latency lock poisoned")
            .record(us);
    }

    /// Snapshots every counter and gauge into a telemetry [`Registry`]
    /// under the `serve.` namespace. Job latency is published both as a
    /// summary (`serve.job_latency_us`) and as the legacy flat counters
    /// (`serve.job_latency.count` / `.p50_us` / `.p95_us`). `evicted` is
    /// the job table's retention-eviction count (the table owns it, the
    /// metrics document reports it).
    pub fn to_registry(
        &self,
        queue_depth: usize,
        workers: usize,
        evicted: u64,
        generation: u64,
    ) -> Registry {
        let mut reg = Registry::new();
        reg.set_counter("serve.http.requests", self.requests.load(Ordering::Relaxed));
        reg.set_counter("serve.policy.generation", generation);
        reg.set_counter(
            "serve.jobs.submitted",
            self.submitted.load(Ordering::Relaxed),
        );
        reg.set_counter("serve.jobs.rejected", self.rejected.load(Ordering::Relaxed));
        reg.set_counter("serve.jobs.evicted", evicted);
        reg.set_counter(
            "serve.jobs.recovered",
            self.recovered.load(Ordering::Relaxed),
        );
        reg.set_counter("serve.jobs.done", self.done.load(Ordering::Relaxed));
        reg.set_counter("serve.jobs.failed", self.failed.load(Ordering::Relaxed));
        reg.set_counter(
            "serve.jobs.timed_out",
            self.timed_out.load(Ordering::Relaxed),
        );
        reg.set_counter("serve.jobs.panicked", self.panicked.load(Ordering::Relaxed));
        reg.set_counter(
            "serve.jobs.cancelled",
            self.cancelled.load(Ordering::Relaxed),
        );
        reg.set_counter(
            "serve.runs.executed",
            self.runs_executed.load(Ordering::Relaxed),
        );
        reg.set_counter(
            "serve.ckpt.quarantined",
            self.ckpt_quarantined.load(Ordering::Relaxed),
        );
        reg.set_counter("serve.queue.depth", queue_depth as u64);
        let busy = self.busy.load(Ordering::Relaxed);
        reg.set_counter("serve.workers.total", workers as u64);
        reg.set_counter("serve.workers.busy", busy as u64);
        reg.set_gauge(
            "serve.workers.utilization",
            busy as f64 / workers.max(1) as f64,
        );
        let latency = self.latency_us.lock().expect("latency lock poisoned");
        reg.set_counter("serve.job_latency.count", latency.count());
        reg.set_counter("serve.job_latency.p50_us", latency.percentile(50.0));
        reg.set_counter("serve.job_latency.p95_us", latency.percentile(95.0));
        reg.set_gauge("serve.job_latency.mean_us", latency.mean());
        reg.observe_histogram("serve.job_latency_us", &latency);
        reg
    }
}

/// State shared by the accept loop, connection handlers, and workers.
struct Shared {
    jobs: JobTable,
    queue: BoundedQueue<u64>,
    metrics: Metrics,
    progress: ProgressBoard,
    shutdown: AtomicBool,
    addr: SocketAddr,
    workers: usize,
    job_deadline: Option<Duration>,
    journal: Option<Journal>,
    journal_dir: Option<PathBuf>,
    checkpoint_every: u64,
    policy: Option<FleetPolicy>,
}

impl Shared {
    /// The fleet config generation this incarnation executes under.
    fn policy_generation(&self) -> u64 {
        self.policy.as_ref().map_or(0, |p| p.generation)
    }
}

/// Appends to the journal if one is configured. Append failures are
/// reported but do not fail the request — the in-memory state is still
/// correct for this incarnation; only crash durability degrades.
fn journal_append(shared: &Shared, event: &JournalEvent) {
    if let Some(journal) = &shared.journal {
        if let Err(e) = journal.append(event) {
            eprintln!("baryon-serve: journal append failed: {e}");
        }
    }
}

/// A bound, running job server (workers already spawned; call
/// [`Server::run`] to start serving connections).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:<port>` and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (e.g. port already in use).
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `queue_depth` is zero.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        assert!(cfg.workers > 0, "need at least one worker");
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, cfg.port))?;
        let journal = match &cfg.journal_dir {
            Some(dir) => Some(Journal::open(dir)?),
            None => None,
        };
        // Policy serving limits take precedence over the direct config
        // fields: the rollout distributes one document, not two.
        let job_deadline = cfg
            .policy
            .as_ref()
            .and_then(|p| p.job_deadline_ms)
            .map(Duration::from_millis)
            .or(cfg.job_deadline);
        let checkpoint_every = cfg
            .policy
            .as_ref()
            .and_then(|p| p.checkpoint_every)
            .unwrap_or_else(checkpoint_every_from_env);
        let shared = Arc::new(Shared {
            jobs: JobTable::with_finished_cap(cfg.finished_cap),
            queue: BoundedQueue::new(cfg.queue_depth),
            metrics: Metrics::default(),
            progress: ProgressBoard::new(),
            shutdown: AtomicBool::new(false),
            addr: listener.local_addr()?,
            workers: cfg.workers,
            job_deadline,
            journal,
            journal_dir: cfg.journal_dir.clone(),
            checkpoint_every,
            policy: cfg.policy.clone(),
        });
        if let Some(dir) = &cfg.journal_dir {
            recover_from_journal(&shared, dir)?;
        }
        // Mark which generation this incarnation journals under, so the
        // journal distinguishes results across rollouts. Generation 0 is
        // the baseline and stays unmarked (byte-identical journals).
        if shared.policy_generation() > 0 {
            journal_append(
                &shared,
                &JournalEvent::PolicyGeneration {
                    generation: shared.policy_generation(),
                },
            );
        }
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("baryon-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Server {
            listener,
            shared,
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until `POST /v1/shutdown`, then drains queued and in-flight
    /// jobs and returns.
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful bind; the signature leaves
    /// room for fatal accept-loop errors.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else {
                continue; // transient accept error
            };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_connection(stream, &shared));
        }
        // Drain: workers exit once the (closed) queue is empty.
        for worker in self.workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Boot-time recovery: replays the write-ahead journal and reconstructs
/// the job table. Settled jobs come back with their journaled outcomes;
/// never-started and interrupted jobs are re-enqueued (interrupted single
/// runs will resume from their newest checkpoint when a worker picks them
/// up). Runs before the worker pool spawns, so recovered work is queued
/// ahead of anything newly submitted.
fn recover_from_journal(shared: &Shared, dir: &std::path::Path) -> io::Result<()> {
    let events = Journal::replay(dir)?;
    let (jobs, max_id) = recover(&events);
    shared.jobs.floor_next_id(max_id);
    for job in jobs {
        let spec = json::parse(&job.spec_json)
            .map_err(|e| e.to_string())
            .and_then(|doc| JobSpec::from_json(&doc));
        let spec = match spec {
            Ok(spec) => spec,
            Err(e) => {
                // A journaled spec that no longer parses (e.g. the
                // workload registry changed under it) surfaces as a
                // failed job instead of being dropped silently.
                shared.jobs.install(JobRecord {
                    id: job.id,
                    state: JobState::Failed,
                    spec: JobSpec::Run(baryon_bench::spec::RunSpec::default()),
                    result: None,
                    error: Some(format!("unrecoverable journaled spec: {e}")),
                    wall_us: None,
                });
                continue;
            }
        };
        match job.state {
            RecoveredState::Queued | RecoveredState::Interrupted => {
                shared.jobs.install(JobRecord {
                    id: job.id,
                    state: JobState::Queued,
                    spec,
                    result: None,
                    error: None,
                    wall_us: None,
                });
                if shared.queue.try_push(job.id).is_ok() {
                    shared.metrics.recovered.fetch_add(1, Ordering::Relaxed);
                } else {
                    // The queue is smaller than the recovered backlog;
                    // failing loudly beats stranding the job as `queued`
                    // forever.
                    let reason = "recovery: queue full, job not re-enqueued".to_owned();
                    shared.jobs.start(job.id);
                    shared.jobs.finish(job.id, Err(reason.clone()), 0);
                    shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                    journal_append(
                        shared,
                        &JournalEvent::Finish {
                            id: job.id,
                            ok: false,
                            body: reason,
                        },
                    );
                }
            }
            RecoveredState::Finished { ok, body } => {
                let (state, result, error) = if ok {
                    match json::parse(&body) {
                        Ok(doc) => (JobState::Done, Some(doc), None),
                        Err(e) => (
                            JobState::Failed,
                            None,
                            Some(format!("unrecoverable journaled result: {e}")),
                        ),
                    }
                } else {
                    (JobState::Failed, None, Some(body))
                };
                shared.jobs.install(JobRecord {
                    id: job.id,
                    state,
                    spec,
                    result,
                    error,
                    wall_us: None,
                });
            }
            RecoveredState::Cancelled => {
                shared.jobs.install(JobRecord {
                    id: job.id,
                    state: JobState::Cancelled,
                    spec,
                    result: None,
                    error: None,
                    wall_us: None,
                });
            }
        }
    }
    Ok(())
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(id) = shared.queue.pop() {
        // `start` refuses jobs cancelled while queued.
        let Some(spec) = shared.jobs.start(id) else {
            continue;
        };
        journal_append(shared, &JournalEvent::Start { id });
        shared.metrics.busy.fetch_add(1, Ordering::Relaxed);
        match shared.job_deadline {
            None => run_job(shared, id, spec),
            Some(deadline) => run_job_with_deadline(shared, id, spec, deadline),
        }
        shared.metrics.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Executes a job's spec. With journaling enabled, single runs write
/// rotating checkpoints under `<journal_dir>/ckpt-<id>/` and resume from
/// the newest one left behind by a previous incarnation — the simulator's
/// bit-identical continuation invariant makes the resumed result
/// indistinguishable from an uninterrupted run. Grid jobs restart from
/// scratch: their cells are independent and each is short. Checkpoints
/// are deleted once the job settles.
fn execute_spec(shared: &Shared, id: u64, spec: &JobSpec) -> Result<Json, String> {
    match spec {
        JobSpec::Run(run) => execute_run(shared, id, run),
        JobSpec::Grid(grid) => execute_grid(shared, id, grid),
    }
}

/// Executes a single run, publishing [`crate::progress::JobProgress`]
/// snapshots every `checkpoint_every` trace operations. Both observation
/// and checkpointing only watch the run, so the result stays bit-identical
/// to a plain [`RunSpec::execute`].
fn execute_run(shared: &Shared, id: u64, run: &RunSpec) -> Result<Json, String> {
    let ckpt_dir = shared
        .journal_dir
        .as_ref()
        .map(|dir| dir.join(format!("ckpt-{id}")));
    if let Some(dir) = &ckpt_dir {
        // The fallback ladder: newest checkpoint → older rotations → cold
        // re-run (the journal already re-admitted this job). A rung that
        // fails validation or resume is quarantined (renamed `.bad`,
        // counted in `serve.ckpt.quarantined`) and the descent continues;
        // a rotten checkpoint costs replay time, never the job.
        // (An unreadable directory falls straight through to a cold run.)
        while let Ok(scan) = Checkpoint::latest_valid_in(dir, CHECKPOINT_PREFIX) {
            if scan.quarantined > 0 {
                shared
                    .metrics
                    .ckpt_quarantined
                    .fetch_add(scan.quarantined, Ordering::Relaxed);
            }
            let Some(path) = scan.newest_valid else {
                break; // ladder exhausted → cold run
            };
            match resume_from_with(&path, shared.policy.as_ref()) {
                Ok((resumed_spec, result)) if resumed_spec == *run => {
                    let _ = std::fs::remove_dir_all(dir);
                    return Ok(result.to_json());
                }
                // A stale checkpoint of some other spec: this directory
                // belonged to a different job; run fresh.
                Ok(_) => break,
                // Framed correctly yet unresumable (or re-read under
                // chaos): quarantine this rung too and descend.
                Err(_) => {
                    shared
                        .metrics
                        .ckpt_quarantined
                        .fetch_add(1, Ordering::Relaxed);
                    let bad = path.with_file_name(format!(
                        "{}.bad",
                        path.file_name().and_then(|n| n.to_str()).unwrap_or("ckpt")
                    ));
                    if std::fs::rename(&path, &bad).is_err() {
                        break; // cannot descend safely → cold run
                    }
                }
            }
        }
    }
    let result = run.execute_observed_with(
        shared.checkpoint_every,
        ckpt_dir.as_deref().map(|dir| (dir, 2)),
        &mut |p| {
            shared.progress.publish(id, |jp| {
                jp.phase = p.phase.as_str();
                jp.ops = p.ops;
                jp.insts_done = p.insts_done;
                jp.insts_target = p.insts_target;
                jp.cycles = p.cycles;
                jp.cells_total = 1;
            });
        },
        shared.policy.as_ref(),
    )?;
    if let Some(dir) = &ckpt_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    Ok(result.to_json())
}

/// Executes a grid cell by cell, publishing `cells_done` after each — the
/// cell order, the result document, and the first-error semantics are
/// exactly those of [`JobSpec::execute`]. Grid cells restart from scratch
/// after a crash: they are independent and each is short.
fn execute_grid(shared: &Shared, id: u64, grid: &GridSpec) -> Result<Json, String> {
    let cells = grid.expand();
    let total = cells.len() as u64;
    shared.progress.publish(id, |jp| {
        jp.phase = "measure";
        jp.cells_total = total;
    });
    let mut results = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        results.push(cell.execute_with(shared.policy.as_ref())?.to_json());
        shared.progress.publish(id, |jp| {
            jp.cells_done = i as u64 + 1;
            jp.ops = i as u64 + 1;
        });
    }
    Ok(Json::obj([("results", Json::Arr(results))]))
}

/// Executes `spec` and records the outcome. The guarded
/// [`JobTable::finish`] decides whether this result lands — if a watchdog
/// already failed the job, the late result is discarded and no completion
/// metrics move (a job resolves exactly once).
fn run_job(shared: &Shared, id: u64, spec: JobSpec) {
    let t0 = Instant::now();
    let (outcome, panicked) =
        match panic::catch_unwind(AssertUnwindSafe(|| execute_spec(shared, id, &spec))) {
            Ok(outcome) => (outcome, false),
            Err(payload) => (Err(panic_message(payload.as_ref())), true),
        };
    let wall_us = t0.elapsed().as_micros() as u64;
    if panicked {
        shared.metrics.panicked.fetch_add(1, Ordering::Relaxed);
    }
    let succeeded = outcome.is_ok();
    let body = match &outcome {
        Ok(doc) => doc.render(),
        Err(message) => message.clone(),
    };
    if shared.jobs.finish(id, outcome, wall_us) {
        journal_append(
            shared,
            &JournalEvent::Finish {
                id,
                ok: succeeded,
                body,
            },
        );
        shared.metrics.record_latency(wall_us);
        if succeeded {
            shared.metrics.done.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .runs_executed
                .fetch_add(spec.runs() as u64, Ordering::Relaxed);
        } else {
            shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    // The final state now lives in the job table; event streams emit
    // their end record from there.
    shared.progress.remove(id);
}

/// Runs `spec` on a watchdog-supervised runner thread. If the runner does
/// not report back within `deadline`, the job is failed with a timeout
/// reason and the worker returns to take the next queued job; the stuck
/// runner is abandoned (it cannot be killed, but its eventual result is
/// ignored by the guarded `finish` and the thread dies with the process).
fn run_job_with_deadline(shared: &Arc<Shared>, id: u64, spec: JobSpec, deadline: Duration) {
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let runner_shared = Arc::clone(shared);
    let runner = match std::thread::Builder::new()
        .name(format!("baryon-serve-job-{id}"))
        .spawn(move || {
            run_job(&runner_shared, id, spec);
            let _ = done_tx.send(());
        }) {
        Ok(runner) => runner,
        Err(e) => {
            // Thread exhaustion must fail this job, not the whole worker.
            if shared
                .jobs
                .finish(id, Err(format!("cannot spawn job runner thread: {e}")), 0)
            {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
    };
    match done_rx.recv_timeout(deadline) {
        Ok(()) => {
            let _ = runner.join();
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            let wall_us = deadline.as_micros() as u64;
            let reason = format!("deadline exceeded: still running after {deadline:?}");
            if shared.jobs.finish(id, Err(reason), wall_us) {
                shared.metrics.timed_out.fetch_add(1, Ordering::Relaxed);
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                shared.metrics.record_latency(wall_us);
            } else {
                // The runner slipped in right at the deadline; its result
                // already landed, so this is not a timeout after all.
                let _ = runner.join();
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The runner died without reporting (e.g. a poisoned lock
            // aborted it past the catch_unwind); surface that as a failure
            // if nothing landed.
            let _ = runner.join();
            if shared
                .jobs
                .finish(id, Err("job runner died without a result".to_owned()), 0)
            {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let detail = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_owned());
    format!("worker panicked: {detail}")
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // A parked keep-alive peer must not pin this thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // peer closed between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = Response::error(400, ErrorCode::BadRequest, &e.to_string())
                    .write_to(&mut writer, true);
                return;
            }
            Err(_) => return, // timeout or reset
        };
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // Event streams take over the connection: chunked transfer until
        // the job settles, then close.
        if let Some(id) = events_target(&request) {
            if shared.jobs.get(id).is_some() {
                let _ = stream_events(shared, id, &mut writer);
            } else {
                let _ = Response::error(404, ErrorCode::NotFound, "no such job")
                    .write_to(&mut writer, true);
            }
            return;
        }
        let response = route(shared, &request);
        let close = !request.keep_alive() || shared.shutdown.load(Ordering::SeqCst);
        if response.write_to(&mut writer, close).is_err() || close {
            return;
        }
    }
}

/// `GET /v1/jobs/<id>/events` → the job ID; anything else → `None`.
fn events_target(request: &Request) -> Option<u64> {
    if request.method != "GET" {
        return None;
    }
    let path = request
        .path
        .split_once('?')
        .map_or(request.path.as_str(), |(p, _)| p);
    path.strip_prefix("/v1/jobs/")?
        .strip_suffix("/events")?
        .parse()
        .ok()
}

/// How many empty waits (500 ms each) between `alive` heartbeats on an
/// otherwise idle event stream — a dead peer is noticed within ~10 s even
/// when the job publishes nothing (e.g. still queued).
const STREAM_HEARTBEAT_WAITS: u32 = 20;

/// Streams one JSON event object per line over chunked transfer encoding
/// until the job settles: `progress` events whenever the job's
/// [`crate::progress::JobProgress`] sequence moves (strictly monotonic
/// `seq`/`ops` within a run), `alive` heartbeats across long gaps, and a
/// final `end` event carrying the settled state.
fn stream_events(shared: &Shared, id: u64, writer: &mut TcpStream) -> io::Result<()> {
    let mut stream = ChunkedWriter::begin(&mut *writer, 200, &[])?;
    let mut last_seq = 0;
    let mut idle_waits = 0;
    loop {
        if let Some(p) = shared.progress.get(id) {
            if p.seq > last_seq {
                last_seq = p.seq;
                idle_waits = 0;
                let mut line = p.to_json(id).render();
                line.push('\n');
                stream.chunk(line.as_bytes())?;
            }
        }
        let Some(state) = shared.jobs.state(id) else {
            // Evicted mid-stream (retention cap) — close the stream with
            // what we know.
            let mut line = Json::obj([
                ("event", Json::from("end")),
                ("id", Json::from(id)),
                ("state", Json::from("evicted")),
            ])
            .render();
            line.push('\n');
            stream.chunk(line.as_bytes())?;
            return stream.finish();
        };
        if state.is_settled() {
            let mut line = Json::obj([
                ("event", Json::from("end")),
                ("id", Json::from(id)),
                ("state", Json::from(state.as_str())),
            ])
            .render();
            line.push('\n');
            stream.chunk(line.as_bytes())?;
            return stream.finish();
        }
        if shared
            .progress
            .wait_past(id, last_seq, Duration::from_millis(500))
            .is_none()
        {
            idle_waits += 1;
            if idle_waits >= STREAM_HEARTBEAT_WAITS {
                idle_waits = 0;
                let mut line =
                    Json::obj([("event", Json::from("alive")), ("id", Json::from(id))]).render();
                line.push('\n');
                stream.chunk(line.as_bytes())?;
            }
        }
    }
}

/// Dispatches one request to its endpoint. The query string (if any) only
/// matters to `/v1/metrics` (`?format=wire`); it never participates in
/// path matching.
fn route(shared: &Shared, request: &Request) -> Response {
    let (path, query) = request
        .path
        .split_once('?')
        .unwrap_or((request.path.as_str(), ""));
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/v1/healthz") => Response::json(200, &Json::obj([("ok", Json::Bool(true))])),
        ("GET", "/v1/metrics") => metrics_response(shared, query),
        ("POST", "/v1/jobs") => submit(shared, &request.body),
        ("POST", "/v1/shutdown") => shutdown(shared),
        _ => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                return job_route(shared, method, rest);
            }
            if matches!(
                path,
                "/v1/healthz" | "/v1/metrics" | "/v1/jobs" | "/v1/shutdown"
            ) {
                return Response::error(405, ErrorCode::MethodNotAllowed, "method not allowed");
            }
            Response::error(404, ErrorCode::NotFound, "no such endpoint")
        }
    }
}

fn job_route(shared: &Shared, method: &str, rest: &str) -> Response {
    let (id_text, action) = match rest.split_once('/') {
        None => (rest, None),
        Some((id, action)) => (id, Some(action)),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(404, ErrorCode::NotFound, "job IDs are integers");
    };
    match (method, action) {
        ("GET", None) => match shared.jobs.get(id) {
            Some(record) => Response::json(200, &record.to_json()),
            None => Response::error(404, ErrorCode::NotFound, "no such job"),
        },
        ("POST", Some("cancel")) => match shared.jobs.cancel(id) {
            CancelOutcome::Cancelled => {
                journal_append(shared, &JournalEvent::Cancel { id });
                shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                Response::json(
                    200,
                    &Json::obj([("id", Json::from(id)), ("state", Json::from("cancelled"))]),
                )
            }
            CancelOutcome::TooLate(state) => Response::error(
                409,
                ErrorCode::Conflict,
                &format!(
                    "job is {}, only queued jobs can be cancelled",
                    state.as_str()
                ),
            ),
            CancelOutcome::NotFound => Response::error(404, ErrorCode::NotFound, "no such job"),
        },
        (_, None) => Response::error(405, ErrorCode::MethodNotAllowed, "method not allowed"),
        _ => Response::error(404, ErrorCode::NotFound, "no such endpoint"),
    }
}

fn submit(shared: &Shared, body: &[u8]) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::error(503, ErrorCode::ShuttingDown, "server is shutting down");
    }
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, ErrorCode::BadRequest, "body is not UTF-8"),
    };
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            return Response::error(400, ErrorCode::InvalidJson, &format!("invalid JSON: {e}"))
        }
    };
    let spec = match JobSpec::from_json(&doc) {
        Ok(spec) => spec,
        Err(e) => {
            return Response::error(
                400,
                ErrorCode::InvalidSpec,
                &format!("invalid job spec: {e}"),
            )
        }
    };
    let spec_json = spec.to_json().render();
    let id = shared.jobs.submit(spec);
    // Write-ahead: the submit record must be durable before the client
    // sees 202. If it cannot be journaled, the submission is refused —
    // an acknowledged job that would vanish in a crash is worse than a
    // retry.
    if let Some(journal) = &shared.journal {
        if let Err(e) = journal.append(&JournalEvent::Submit { id, spec_json }) {
            shared.jobs.forget(id);
            return Response::error(
                500,
                ErrorCode::Internal,
                &format!("cannot journal submission: {e}"),
            );
        }
    }
    match shared.queue.try_push(id) {
        Ok(()) => {
            shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
            Response::json(
                202,
                &Json::obj([("id", Json::from(id)), ("state", Json::from("queued"))]),
            )
        }
        Err(PushError::Full) => {
            shared.jobs.forget(id);
            // The submit record is already durable; compensate so a
            // replay never resurrects a job the client saw refused.
            journal_append(shared, &JournalEvent::Cancel { id });
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            Response::error(503, ErrorCode::QueueFull, "queue full, retry later")
                .header("Retry-After", "1")
        }
        Err(PushError::Closed) => {
            shared.jobs.forget(id);
            journal_append(shared, &JournalEvent::Cancel { id });
            Response::error(503, ErrorCode::ShuttingDown, "server is shutting down")
        }
    }
}

/// `GET /v1/metrics` — the JSON registry document by default, or
/// `{"wire": "<hex>"}` of the registry's full-fidelity
/// [`Registry::save_state`] bytes with `?format=wire`. The wire form is
/// what fleet coordinators absorb: unlike the JSON summaries (five fixed
/// percentile fields), the wire bytes reconstruct the registry exactly, so
/// merged fleet histograms stay faithful.
fn metrics_response(shared: &Shared, query: &str) -> Response {
    let reg = shared.metrics.to_registry(
        shared.queue.len(),
        shared.workers,
        shared.jobs.evictions(),
        shared.policy_generation(),
    );
    if query.split('&').any(|pair| pair == "format=wire") {
        let mut w = wire::Writer::new();
        reg.save_state(&mut w);
        let hex = wire::to_hex(&w.into_bytes());
        return Response::json(200, &Json::obj([("wire", Json::from(hex.as_str()))]));
    }
    Response::json(200, &reg.to_json())
}

fn shutdown(shared: &Shared) -> Response {
    let draining = shared.queue.len();
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.queue.close();
    // Unblock the accept loop so `run` can notice the flag and join the
    // workers. The dummy connection closes immediately (clean EOF).
    let _ = TcpStream::connect(shared.addr);
    Response::json(
        200,
        &Json::obj([("ok", Json::Bool(true)), ("draining", Json::from(draining))]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_export_through_telemetry_registry() {
        let m = Metrics::default();
        m.submitted.store(5, Ordering::Relaxed);
        m.done.store(3, Ordering::Relaxed);
        m.timed_out.store(2, Ordering::Relaxed);
        m.panicked.store(1, Ordering::Relaxed);
        m.busy.store(1, Ordering::Relaxed);
        m.recovered.store(4, Ordering::Relaxed);
        m.record_latency(1000);
        m.record_latency(2000);
        let reg = m.to_registry(4, 2, 7, 3);
        assert_eq!(reg.counter("serve.jobs.submitted"), 5);
        assert_eq!(reg.counter("serve.policy.generation"), 3);
        assert_eq!(reg.counter("serve.jobs.done"), 3);
        assert_eq!(reg.counter("serve.jobs.evicted"), 7);
        assert_eq!(reg.counter("serve.jobs.recovered"), 4);
        assert_eq!(reg.counter("serve.jobs.timed_out"), 2);
        assert_eq!(reg.counter("serve.jobs.panicked"), 1);
        assert_eq!(reg.counter("serve.queue.depth"), 4);
        assert_eq!(reg.counter("serve.workers.total"), 2);
        assert_eq!(reg.counter("serve.workers.busy"), 1);
        assert_eq!(reg.counter("serve.job_latency.count"), 2);
        assert!(reg.counter("serve.job_latency.p50_us") >= 512);
        assert!((reg.gauge("serve.workers.utilization") - 0.5).abs() < 1e-12);
        assert!(reg.gauge("serve.job_latency.mean_us") > 0.0);
        let summary = reg.summary("serve.job_latency_us").expect("summary");
        assert_eq!(summary.count(), 2);
    }

    #[test]
    fn metrics_schema_is_golden() {
        // The /v1/metrics document is the registry's JSON: exactly these
        // names, under exactly these sections. Extending the schema is
        // fine — update the lists here — but renaming or dropping a metric
        // breaks scrapers and must be deliberate.
        let m = Metrics::default();
        m.record_latency(1000);
        let reg = m.to_registry(4, 2, 0, 0);
        let counters: Vec<&str> = reg.counters().map(|(k, _)| k).collect();
        assert_eq!(
            counters,
            [
                "serve.ckpt.quarantined",
                "serve.http.requests",
                "serve.job_latency.count",
                "serve.job_latency.p50_us",
                "serve.job_latency.p95_us",
                "serve.jobs.cancelled",
                "serve.jobs.done",
                "serve.jobs.evicted",
                "serve.jobs.failed",
                "serve.jobs.panicked",
                "serve.jobs.recovered",
                "serve.jobs.rejected",
                "serve.jobs.submitted",
                "serve.jobs.timed_out",
                "serve.policy.generation",
                "serve.queue.depth",
                "serve.runs.executed",
                "serve.workers.busy",
                "serve.workers.total",
            ]
        );
        let gauges: Vec<&str> = reg.gauges().map(|(k, _)| k).collect();
        assert_eq!(
            gauges,
            ["serve.job_latency.mean_us", "serve.workers.utilization"]
        );
        let summaries: Vec<&str> = reg.summaries().map(|(k, _)| k).collect();
        assert_eq!(summaries, ["serve.job_latency_us"]);
        // The rendered document has the three top-level sections in this
        // order, and every summary carries the five fixed fields.
        let text = reg.to_json().render();
        assert!(text.starts_with("{\"counters\":{"));
        assert!(text.contains("\"gauges\":{"));
        assert!(text.contains("\"summaries\":{"));
        for field in [
            "\"count\":",
            "\"mean\":",
            "\"p50\":",
            "\"p90\":",
            "\"p99\":",
        ] {
            assert!(text.contains(field), "missing {field} in:\n{text}");
        }
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.workers > 0);
        assert!(cfg.queue_depth > 0);
        assert!(cfg.job_deadline.is_none(), "jobs run unbounded by default");
        assert!(cfg.journal_dir.is_none(), "in-memory by default");
        assert!(cfg.finished_cap > 0, "retention cap must admit jobs");
        assert!(cfg.policy.is_none(), "baseline policy by default");
    }
}

//! A bounded MPMC job queue with explicit backpressure.
//!
//! Producers never block: [`BoundedQueue::try_push`] fails fast with
//! [`PushError::Full`] so the HTTP layer can answer `503 Retry-After`
//! instead of stalling the accept path. Consumers (the worker pool) block
//! in [`BoundedQueue::pop`] until an item arrives or the queue is closed
//! and drained — which is exactly the graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry later.
    Full,
    /// The queue was closed (server is draining); never retry.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue full"),
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between connection handlers and workers.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (every push would be refused).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            available: Condvar::new(),
        }
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues, blocking while the queue is empty and open. Returns
    /// `None` once the queue is closed *and* drained — the worker's signal
    /// to exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: future pushes fail, queued items still drain.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (racy by nature; for metrics only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(3);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_pushes_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).expect("space again");
    }

    #[test]
    fn closed_queue_refuses_pushes_but_drains() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.close();
        for h in handles {
            assert_eq!(h.join().expect("no panic"), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_see_every_item() {
        let q = Arc::new(BoundedQueue::new(4));
        let total = 64u64;
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let mut pushed = 0u64;
        for v in 1..=total {
            loop {
                match q.try_push(v) {
                    Ok(()) => break,
                    Err(PushError::Full) => std::thread::yield_now(),
                    Err(PushError::Closed) => panic!("not closed"),
                }
            }
            pushed += v;
        }
        q.close();
        let consumed: u64 = consumers
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .sum();
        assert_eq!(consumed, pushed);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    /// Race `close` against a herd of producers: whatever `try_push`
    /// accepted before the close must still drain — shutdown never loses
    /// an acknowledged item — and everything after fails `Closed`.
    #[test]
    fn close_racing_producers_loses_no_accepted_item() {
        for round in 0..20 {
            let q = Arc::new(BoundedQueue::new(8));
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut accepted = 0u64;
                        for v in 0..200u64 {
                            match q.try_push(p * 1000 + v) {
                                Ok(()) => accepted += 1,
                                Err(PushError::Full) => std::thread::yield_now(),
                                Err(PushError::Closed) => break,
                            }
                        }
                        accepted
                    })
                })
                .collect();
            // Consumer drains concurrently so producers make progress.
            let consumer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut drained = 0u64;
                    while q.pop().is_some() {
                        drained += 1;
                    }
                    drained
                })
            };
            // Close at a slightly different point each round.
            for _ in 0..round {
                std::thread::yield_now();
            }
            q.close();
            let accepted: u64 = producers
                .into_iter()
                .map(|h| h.join().expect("producer exits"))
                .sum();
            let drained = consumer.join().expect("consumer exits");
            assert_eq!(drained, accepted, "round {round} lost accepted items");
            assert_eq!(q.try_push(9999), Err(PushError::Closed));
        }
    }

    /// Race `close` against consumers blocked in `pop`: every one wakes
    /// with `None` and nothing deadlocks, even when items and the close
    /// arrive back-to-back.
    #[test]
    fn close_racing_blocked_consumers_never_deadlocks() {
        for _ in 0..20 {
            let q = Arc::new(BoundedQueue::new(4));
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = q.pop() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            q.try_push(1).expect("open");
            q.try_push(2).expect("open");
            q.close();
            let mut got: Vec<u32> = consumers
                .into_iter()
                .flat_map(|h| h.join().expect("consumer exits"))
                .collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2], "items pushed just before close drain");
        }
    }
}

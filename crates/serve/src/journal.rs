//! Write-ahead job journal: crash durability for accepted work.
//!
//! Every job lifecycle transition is appended to `journal.wal` inside the
//! journal directory *before* the transition is acknowledged, as a
//! CRC-framed record:
//!
//! ```text
//! [u32 payload length][u32 crc32(payload)][payload]      (little-endian)
//! ```
//!
//! The payload is a [`baryon_sim::wire`] encoding of one [`JournalEvent`].
//! Appends are `sync_data`'d, so an acknowledged submission survives a
//! `SIGKILL`. Replay is tolerant of a torn tail by construction: decoding
//! stops at the first incomplete or CRC-mismatching record — the write
//! that was in flight when the process died — and every record before it
//! is returned intact. A record is *committed* once its bytes and CRC are
//! fully on disk; truncation can only ever lose the uncommitted tail.
//!
//! [`recover`] folds a replayed event stream back into per-job fates:
//! jobs that never started are re-enqueued, jobs that were mid-run are
//! re-run (single runs resume from their newest checkpoint under
//! `<journal_dir>/ckpt-<id>/`; grids restart from scratch), and settled
//! jobs are re-installed with their journaled outcome.

use baryon_compress::crc::crc32;
use baryon_sim::faultfs;
use baryon_sim::wire::{Reader, WireError, Writer};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// The journal file's name inside the journal directory.
pub const JOURNAL_FILE: &str = "journal.wal";

/// One journaled job lifecycle transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// A job was accepted; `spec_json` is its spec rendered as JSON.
    Submit {
        /// The job's ID.
        id: u64,
        /// The submitted spec, rendered as JSON.
        spec_json: String,
    },
    /// A worker began executing the job.
    Start {
        /// The job's ID.
        id: u64,
    },
    /// The job settled. `ok` selects the meaning of `body`: a rendered
    /// result document on success, an error message on failure.
    Finish {
        /// The job's ID.
        id: u64,
        /// Whether the job succeeded.
        ok: bool,
        /// Result JSON (on success) or error message (on failure).
        body: String,
    },
    /// The job was cancelled while queued (or its enqueue was refused
    /// after the submit record was already durable).
    Cancel {
        /// The job's ID.
        id: u64,
    },
    /// This incarnation of the server booted under a fleet config
    /// generation (stamped once at bind time when non-zero). Not a job
    /// lifecycle transition — it marks which policy produced the results
    /// journaled after it.
    PolicyGeneration {
        /// The fleet config generation.
        generation: u64,
    },
}

impl JournalEvent {
    /// The job this event refers to (0 for non-job marker events).
    pub fn id(&self) -> u64 {
        match self {
            JournalEvent::Submit { id, .. }
            | JournalEvent::Start { id }
            | JournalEvent::Finish { id, .. }
            | JournalEvent::Cancel { id } => *id,
            JournalEvent::PolicyGeneration { .. } => 0,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            JournalEvent::Submit { id, spec_json } => {
                w.u8(0);
                w.u64(*id);
                w.str(spec_json);
            }
            JournalEvent::Start { id } => {
                w.u8(1);
                w.u64(*id);
            }
            JournalEvent::Finish { id, ok, body } => {
                w.u8(2);
                w.u64(*id);
                w.bool(*ok);
                w.str(body);
            }
            JournalEvent::Cancel { id } => {
                w.u8(3);
                w.u64(*id);
            }
            JournalEvent::PolicyGeneration { generation } => {
                w.u8(4);
                w.u64(*generation);
            }
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<JournalEvent, WireError> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        let id = r.u64()?;
        let event = match tag {
            0 => JournalEvent::Submit {
                id,
                spec_json: r.str()?,
            },
            1 => JournalEvent::Start { id },
            2 => JournalEvent::Finish {
                id,
                ok: r.bool()?,
                body: r.str()?,
            },
            3 => JournalEvent::Cancel { id },
            // The u64 after the tag is the generation for this variant.
            4 => JournalEvent::PolicyGeneration { generation: id },
            other => return Err(WireError::BadTag(other)),
        };
        r.finish()?;
        Ok(event)
    }
}

/// An open, append-only journal. Appends are serialized by an internal
/// lock, so the HTTP handlers and every worker can share one instance.
pub struct Journal {
    file: Mutex<File>,
}

impl Journal {
    /// Opens (creating as needed) the journal inside `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and open failures.
    pub fn open(dir: &Path) -> io::Result<Journal> {
        fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(JOURNAL_FILE))?;
        Ok(Journal {
            file: Mutex::new(file),
        })
    }

    /// Appends one record and syncs it to disk. Once this returns, the
    /// event survives a crash. The write and sync go through
    /// [`baryon_sim::faultfs`], so chaos runs inject torn appends, silent
    /// record corruption, and fsync failures exactly here — the CRC
    /// framing plus [`Journal::replay`]'s stop-at-first-bad-frame rule
    /// are what keep those faults from ever mis-replaying.
    ///
    /// # Errors
    ///
    /// Propagates write and sync failures (real or injected).
    pub fn append(&self, event: &JournalEvent) -> io::Result<()> {
        let payload = event.encode();
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        let mut file = self.file.lock().expect("journal lock poisoned");
        faultfs::append(&mut file, &record)?;
        faultfs::sync_data(&file)
    }

    /// Replays every committed record of the journal in `dir`, in append
    /// order. A missing journal replays as empty; a torn tail is dropped
    /// silently (it was never acknowledged).
    ///
    /// # Errors
    ///
    /// Propagates read failures other than the file not existing.
    pub fn replay(dir: &Path) -> io::Result<Vec<JournalEvent>> {
        let bytes = match fs::read(dir.join(JOURNAL_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        Ok(decode_records(&bytes))
    }
}

/// Decodes as many whole, CRC-valid records as the buffer holds, stopping
/// at the first incomplete or corrupt one. Never panics: any byte prefix
/// of a valid journal decodes to a prefix of its records.
fn decode_records(bytes: &[u8]) -> Vec<JournalEvent> {
    let mut events = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break; // torn tail: the length outruns the file
        };
        if crc32(payload) != stored {
            break; // torn or corrupt tail
        }
        let Ok(event) = JournalEvent::decode(payload) else {
            break; // framed correctly but undecodable: treat as tail damage
        };
        events.push(event);
        pos += 8 + len;
    }
    events
}

/// What a journaled job resolved to after replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveredState {
    /// Submitted, never started: safe to re-enqueue as-is.
    Queued,
    /// A worker had started it when the process died: re-run it (single
    /// runs resume from their newest checkpoint, grids restart).
    Interrupted,
    /// Settled before the crash; the journaled outcome is authoritative.
    Finished {
        /// Whether the job succeeded.
        ok: bool,
        /// Result JSON (on success) or error message (on failure).
        body: String,
    },
    /// Cancelled while queued; it must never run.
    Cancelled,
}

/// One job reconstructed from the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredJob {
    /// The job's original ID (IDs keep their meaning across restarts).
    pub id: u64,
    /// The spec as submitted, rendered as JSON.
    pub spec_json: String,
    /// The job's reconstructed fate.
    pub state: RecoveredState,
}

/// Folds a replayed event stream into per-job fates, in ID order, plus
/// the highest ID ever issued (the restart's ID counter floor). Events
/// for IDs with no committed submit record are ignored — they cannot
/// occur in a journal written by this module, but a defensive recovery
/// never panics on one.
pub fn recover(events: &[JournalEvent]) -> (Vec<RecoveredJob>, u64) {
    let mut jobs: BTreeMap<u64, RecoveredJob> = BTreeMap::new();
    let mut max_id = 0;
    for event in events {
        max_id = max_id.max(event.id());
        match event {
            JournalEvent::Submit { id, spec_json } => {
                jobs.insert(
                    *id,
                    RecoveredJob {
                        id: *id,
                        spec_json: spec_json.clone(),
                        state: RecoveredState::Queued,
                    },
                );
            }
            JournalEvent::Start { id } => {
                if let Some(job) = jobs.get_mut(id) {
                    // Only a queued (or previously interrupted) job can
                    // start; settled states stay authoritative.
                    if matches!(
                        job.state,
                        RecoveredState::Queued | RecoveredState::Interrupted
                    ) {
                        job.state = RecoveredState::Interrupted;
                    }
                }
            }
            JournalEvent::Finish { id, ok, body } => {
                if let Some(job) = jobs.get_mut(id) {
                    job.state = RecoveredState::Finished {
                        ok: *ok,
                        body: body.clone(),
                    };
                }
            }
            JournalEvent::Cancel { id } => {
                if let Some(job) = jobs.get_mut(id) {
                    if matches!(job.state, RecoveredState::Queued) {
                        job.state = RecoveredState::Cancelled;
                    }
                }
            }
            // A boot marker, not a job transition.
            JournalEvent::PolicyGeneration { .. } => {}
        }
    }
    (jobs.into_values().collect(), max_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Submit {
                id: 1,
                spec_json: r#"{"workload":"ycsb-a"}"#.to_owned(),
            },
            JournalEvent::Start { id: 1 },
            JournalEvent::Finish {
                id: 1,
                ok: true,
                body: r#"{"total_cycles":123}"#.to_owned(),
            },
            JournalEvent::Submit {
                id: 2,
                spec_json: r#"{"workload":"pr.twi"}"#.to_owned(),
            },
            JournalEvent::Cancel { id: 2 },
            JournalEvent::Submit {
                id: 3,
                spec_json: r#"{"workload":"505.mcf_r"}"#.to_owned(),
            },
            JournalEvent::Start { id: 3 },
        ]
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("baryon-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_replay_round_trips() {
        let dir = temp_dir("roundtrip");
        let journal = Journal::open(&dir).expect("open");
        for event in events() {
            journal.append(&event).expect("append");
        }
        drop(journal);
        let back = Journal::replay(&dir).expect("replay");
        assert_eq!(back, events());
        // A journal can be reopened for further appends.
        let journal = Journal::open(&dir).expect("reopen");
        journal
            .append(&JournalEvent::Finish {
                id: 3,
                ok: false,
                body: "killed".to_owned(),
            })
            .expect("append after reopen");
        assert_eq!(Journal::replay(&dir).expect("replay").len(), 8);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn policy_generation_round_trips_and_is_not_a_job() {
        let dir = temp_dir("policy-gen");
        let journal = Journal::open(&dir).expect("open");
        let marker = JournalEvent::PolicyGeneration { generation: 7 };
        assert_eq!(marker.id(), 0, "marker events carry no job ID");
        journal.append(&marker).expect("append");
        journal
            .append(&JournalEvent::Submit {
                id: 1,
                spec_json: "{}".to_owned(),
            })
            .expect("append");
        drop(journal);
        let back = Journal::replay(&dir).expect("replay");
        assert_eq!(back[0], marker);
        let (jobs, max_id) = recover(&back);
        assert_eq!(jobs.len(), 1, "the marker recovers no job");
        assert_eq!(max_id, 1);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn missing_journal_replays_empty() {
        let dir = temp_dir("missing");
        assert_eq!(Journal::replay(&dir).expect("replay"), Vec::new());
    }

    /// The crash-tolerance contract (satellite of the checkpoint PR):
    /// truncating the journal at *every* byte boundary of the last record
    /// never panics and never loses a committed (earlier) record.
    #[test]
    fn truncation_at_every_byte_loses_only_the_tail() {
        let dir = temp_dir("truncate");
        let journal = Journal::open(&dir).expect("open");
        let all = events();
        for event in &all {
            journal.append(event).expect("append");
        }
        drop(journal);
        let path = dir.join(JOURNAL_FILE);
        let full = fs::read(&path).expect("read journal");

        // Find where the last record begins by walking the frames.
        let mut offsets = vec![0usize];
        let mut pos = 0usize;
        while pos < full.len() {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 8 + len;
            offsets.push(pos);
        }
        assert_eq!(pos, full.len(), "journal ends on a record boundary");
        let last_start = offsets[offsets.len() - 2];

        for cut in last_start..full.len() {
            fs::write(&path, &full[..cut]).expect("write truncated");
            let back = Journal::replay(&dir).expect("replay never errors");
            assert_eq!(
                back,
                all[..all.len() - 1],
                "truncation at byte {cut} damaged a committed record"
            );
            // Recovery over the survivors must also be panic-free.
            let (jobs, max_id) = recover(&back);
            assert_eq!(jobs.len(), 3);
            assert_eq!(max_id, 3);
        }
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_byte_stops_replay_at_the_damage() {
        let dir = temp_dir("corrupt");
        let journal = Journal::open(&dir).expect("open");
        for event in events() {
            journal.append(&event).expect("append");
        }
        drop(journal);
        let path = dir.join(JOURNAL_FILE);
        let full = fs::read(&path).expect("read");
        // Flip a byte inside the second record's payload: replay keeps
        // record one and drops everything from the damage on.
        let second = {
            let len = u32::from_le_bytes(full[0..4].try_into().expect("4 bytes")) as usize;
            8 + len
        };
        let mut damaged = full.clone();
        damaged[second + 9] ^= 0xff;
        fs::write(&path, &damaged).expect("write damaged");
        let back = Journal::replay(&dir).expect("replay");
        assert_eq!(back, events()[..1]);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// The chaos-PR extension of the truncation property: flip one byte at
    /// *every* offset of the journal (two masks — a full inversion and a
    /// single-bit flip). Replay must recover exactly the records before
    /// the damaged frame — a typed prefix, never a panic, never a
    /// mis-replayed (altered) record — and recovery over the survivors
    /// must be panic-free too.
    #[test]
    fn single_byte_corruption_at_every_offset_recovers_a_prefix() {
        let dir = temp_dir("flip-everywhere");
        let journal = Journal::open(&dir).expect("open");
        let all = events();
        for event in &all {
            journal.append(event).expect("append");
        }
        drop(journal);
        let path = dir.join(JOURNAL_FILE);
        let full = fs::read(&path).expect("read journal");

        // Record index covering each byte offset, from the frame walk.
        let mut record_of = vec![0usize; full.len()];
        let mut pos = 0usize;
        let mut index = 0usize;
        while pos < full.len() {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            record_of[pos..pos + 8 + len].fill(index);
            pos += 8 + len;
            index += 1;
        }
        assert_eq!(index, all.len(), "frame walk covers every record");

        for offset in 0..full.len() {
            for mask in [0xffu8, 0x01] {
                let mut damaged = full.clone();
                damaged[offset] ^= mask;
                fs::write(&path, &damaged).expect("write damaged");
                let back = Journal::replay(&dir).expect("replay never errors");
                // CRC framing guarantees the damaged frame (and therefore
                // everything after it) is dropped whole, and everything
                // before it survives byte-identically.
                assert_eq!(
                    back,
                    all[..record_of[offset]],
                    "flip {mask:#04x} at byte {offset} mis-replayed"
                );
                let (jobs, _) = recover(&back);
                assert!(jobs.len() <= 3, "recovery invented jobs");
            }
        }
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn recover_folds_lifecycles() {
        let (jobs, max_id) = recover(&events());
        assert_eq!(max_id, 3);
        assert_eq!(jobs.len(), 3);
        assert_eq!(
            jobs[0].state,
            RecoveredState::Finished {
                ok: true,
                body: r#"{"total_cycles":123}"#.to_owned()
            }
        );
        assert_eq!(jobs[1].state, RecoveredState::Cancelled);
        assert_eq!(jobs[2].state, RecoveredState::Interrupted);

        // A submit with no further events recovers as queued; stray
        // events for unknown IDs are ignored.
        let (jobs, max_id) = recover(&[
            JournalEvent::Start { id: 9 },
            JournalEvent::Submit {
                id: 4,
                spec_json: "{}".to_owned(),
            },
        ]);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].state, RecoveredState::Queued);
        assert_eq!(max_id, 9, "the counter floor covers every ID seen");
    }

    #[test]
    fn finish_beats_late_cancel_and_restart_start() {
        // finish then a (bogus) cancel: the settled outcome stays.
        let (jobs, _) = recover(&[
            JournalEvent::Submit {
                id: 1,
                spec_json: "{}".to_owned(),
            },
            JournalEvent::Start { id: 1 },
            JournalEvent::Finish {
                id: 1,
                ok: false,
                body: "boom".to_owned(),
            },
            JournalEvent::Cancel { id: 1 },
        ]);
        assert_eq!(
            jobs[0].state,
            RecoveredState::Finished {
                ok: false,
                body: "boom".to_owned()
            }
        );
        // A job restarted after an earlier interruption journals a second
        // start; it stays interrupted until a finish lands.
        let (jobs, _) = recover(&[
            JournalEvent::Submit {
                id: 1,
                spec_json: "{}".to_owned(),
            },
            JournalEvent::Start { id: 1 },
            JournalEvent::Start { id: 1 },
        ]);
        assert_eq!(jobs[0].state, RecoveredState::Interrupted);
    }
}

//! A minimal HTTP/1.1 request reader and response writer.
//!
//! Just enough of RFC 9112 for a hermetic job server: request line,
//! headers, `Content-Length` bodies, keep-alive, and chunked transfer
//! encoding for streamed responses ([`ChunkedWriter`] /
//! [`read_chunked_body`]). No TLS, no compression — job specs and result
//! documents are small JSON bodies over loopback or a trusted network.

use crate::error::{ApiError, ErrorCode};
use baryon_compress::crc::crc32;
use baryon_sim::faultfs;
use baryon_sim::json::Json;
use std::io::{self, BufRead, Read, Write};

/// Longest accepted request line or header line, and the cap on total
/// header bytes. Oversized requests are malformed by definition here.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Largest accepted request body (job specs are tiny; result documents
/// only ever travel in responses).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// The body-integrity header every [`Response`] carries: the CRC-32 of
/// the body, in lower-case fixed-width hex. Peers that know the header
/// (the fleet coordinator) verify it; everyone else ignores it.
pub const CRC_HEADER: &str = "x-baryon-crc";

/// A parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target, e.g. `/v1/jobs/7`.
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value for `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default, overridden by `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn malformed(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one line up to CRLF (or bare LF), without the terminator.
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut limited = r.take(MAX_HEAD_BYTES as u64 + 1);
    let n = limited.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None); // clean EOF before any bytes
    }
    if buf.len() > MAX_HEAD_BYTES {
        return Err(malformed("header line too long"));
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| malformed("header line is not UTF-8"))
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` on a clean EOF before the request line (the peer
/// closed an idle keep-alive connection).
///
/// # Errors
///
/// `InvalidData` for malformed or oversized requests; other I/O errors
/// pass through (including timeouts).
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(line) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(malformed(format!("malformed request line: {line:?}"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(malformed(format!("unsupported protocol {version:?}")));
    }
    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let Some(line) = read_line(r)? else {
            return Err(malformed("connection closed inside headers"));
        };
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(malformed("request head too large"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed(format!("malformed header line: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body: Vec::new(),
    };
    // HTTP/1.0 defaults to close; record that as an explicit header so
    // `keep_alive` stays a pure function of the headers.
    if version == "HTTP/1.0" && request.header("connection").is_none() {
        request.headers.push(("connection".into(), "close".into()));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| malformed(format!("bad Content-Length {len:?}")))?;
        if len > MAX_BODY_BYTES {
            return Err(malformed(format!("body of {len} bytes exceeds limit")));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)
            .map_err(|_| malformed("body shorter than Content-Length"))?;
        request.body = body;
    }
    Ok(Some(request))
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (`200`, `404`, ...).
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// The JSON body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: &Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.render(),
        }
    }

    /// The uniform error envelope:
    /// `{"error": {"code": "...", "message": "..."}}`.
    pub fn error(status: u16, code: ErrorCode, message: &str) -> Response {
        Response::json(status, &ApiError::new(code, message).to_json())
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Serializes the response; `close` controls the `Connection` header.
    ///
    /// Every response carries an [`CRC_HEADER`] integrity header — the
    /// CRC-32 of the body as rendered. It is stamped *before* the chaos
    /// layer's response corruption fires (see
    /// [`baryon_sim::faultfs::corrupt_response`]), which is exactly what
    /// lets a coordinator detect a lying shard instead of gathering
    /// garbage.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> io::Result<()> {
        let crc = crc32(self.body.as_bytes());
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n{CRC_HEADER}: {crc:08x}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        if faultfs::global().is_some() {
            // The lying shard: flip a body byte after the CRC was stamped.
            let mut body = self.body.clone().into_bytes();
            let _ = faultfs::corrupt_response(&mut body);
            w.write_all(&body)?;
        } else {
            w.write_all(self.body.as_bytes())?;
        }
        w.flush()
    }
}

/// A `Transfer-Encoding: chunked` response body writer for endpoints whose
/// length is unknown up front (streamed job events). Each [`chunk`] is one
/// HTTP chunk, flushed immediately so the peer sees events as they happen;
/// [`finish`] writes the zero-length terminator. The connection always
/// closes after a streamed response — mixing a stream into keep-alive
/// pipelining buys nothing over loopback and complicates the reader.
///
/// [`chunk`]: ChunkedWriter::chunk
/// [`finish`]: ChunkedWriter::finish
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head (status + `Transfer-Encoding: chunked` +
    /// `Connection: close` + any extra headers) and returns the body
    /// writer.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn begin(mut w: W, status: u16, headers: &[(&str, &str)]) -> io::Result<ChunkedWriter<W>> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
            status,
            reason(status),
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.flush()?;
        Ok(ChunkedWriter { w })
    }

    /// Writes one chunk and flushes it. Empty payloads are skipped — a
    /// zero-length chunk would terminate the stream.
    ///
    /// # Errors
    ///
    /// Propagates writer errors (a disconnected peer shows up here).
    pub fn chunk(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", payload.len())?;
        self.w.write_all(payload)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Writes the terminating zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// Decodes a complete chunked body (everything between the blank line after
/// the headers and the zero-length terminator) from a reader. Used by the
/// typed client and by stream proxies.
///
/// # Errors
///
/// `InvalidData` on malformed chunk framing; other I/O errors pass through.
pub fn read_chunked_body(r: &mut impl BufRead, max: usize) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let Some(line) = read_line(r)? else {
            return Err(malformed("connection closed inside chunked body"));
        };
        let size_str = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16)
            .map_err(|_| malformed(format!("bad chunk size {line:?}")))?;
        if size == 0 {
            // Trailer section: consume lines until the blank terminator.
            loop {
                match read_line(r)? {
                    Some(l) if l.is_empty() => return Ok(body),
                    Some(_) => continue,
                    None => return Err(malformed("connection closed inside trailers")),
                }
            }
        }
        if body.len() + size > max {
            return Err(malformed(format!("chunked body exceeds {max} bytes")));
        }
        let at = body.len();
        body.resize(at + size, 0);
        r.read_exact(&mut body[at..])
            .map_err(|_| malformed("chunk shorter than its size"))?;
        let mut crlf = [0u8; 2];
        r.read_exact(&mut crlf)
            .map_err(|_| malformed("chunk missing terminator"))?;
        if &crlf != b"\r\n" {
            return Err(malformed("chunk not terminated by CRLF"));
        }
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("well-formed")
            .expect("not EOF");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{} \n")
            .expect("well-formed")
            .expect("not EOF");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{} \n");
    }

    #[test]
    fn bare_lf_lines_accepted() {
        let req = parse(b"GET / HTTP/1.1\nA: b\n\n")
            .expect("well-formed")
            .expect("not EOF");
        assert_eq!(req.header("a"), Some("b"));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").expect("clean EOF").is_none());
    }

    #[test]
    fn malformed_requests_rejected() {
        for bad in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET /\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET path HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"GET / HTTP/1.1\r\n",
        ] {
            assert!(
                parse(bad).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn oversized_head_and_body_rejected() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
        assert!(parse(long.as_bytes()).is_err());
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parse(big.as_bytes()).is_err());
    }

    #[test]
    fn response_serializes_with_length_and_connection() {
        let mut out = Vec::new();
        Response::json(200, &Json::obj([("ok", Json::Bool(true))]))
            .header("Retry-After", "1")
            .write_to(&mut out, true)
            .expect("vec write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }

    #[test]
    fn responses_carry_a_matching_body_crc() {
        let mut out = Vec::new();
        Response::json(200, &Json::obj([("ok", Json::Bool(true))]))
            .write_to(&mut out, true)
            .expect("vec write");
        let text = String::from_utf8(out).expect("ascii");
        let stamped = text
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{CRC_HEADER}: ")))
            .expect("integrity header present");
        let body = text.split("\r\n\r\n").nth(1).expect("body");
        assert_eq!(stamped, format!("{:08x}", crc32(body.as_bytes())));
    }

    #[test]
    fn chunked_round_trip() {
        let mut out = Vec::new();
        let mut cw =
            ChunkedWriter::begin(&mut out, 200, &[("x-baryon-job", "7")]).expect("vec write");
        cw.chunk(b"{\"event\":\"progress\"}\n").expect("chunk");
        cw.chunk(b"").expect("empty chunk skipped");
        cw.chunk(b"{\"event\":\"end\"}\n").expect("chunk");
        cw.finish().expect("terminator");
        let text = String::from_utf8(out.clone()).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("x-baryon-job: 7\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
        // Strip the head and decode the body back.
        let split = text.find("\r\n\r\n").expect("head terminator") + 4;
        let mut r = BufReader::new(&out[split..]);
        let body = read_chunked_body(&mut r, MAX_BODY_BYTES).expect("well-formed");
        assert_eq!(
            String::from_utf8(body).expect("utf8"),
            "{\"event\":\"progress\"}\n{\"event\":\"end\"}\n"
        );
    }

    #[test]
    fn chunked_decoder_rejects_malformed_framing() {
        for bad in [
            b"zz\r\nhello\r\n0\r\n\r\n".as_slice(),
            b"5\r\nhel",
            b"5\r\nhelloXX0\r\n\r\n",
            b"5\r\nhello\r\n",
            b"",
        ] {
            let mut r = BufReader::new(bad);
            assert!(
                read_chunked_body(&mut r, MAX_BODY_BYTES).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(bad)
            );
        }
        // Size cap enforced before allocation.
        let mut r = BufReader::new(b"ffffff\r\n".as_slice());
        assert!(read_chunked_body(&mut r, 16).is_err());
    }

    #[test]
    fn error_shape_is_uniform() {
        let r = Response::error(404, ErrorCode::NotFound, "no such job");
        assert_eq!(
            r.body,
            r#"{"error":{"code":"not_found","message":"no such job"}}"#
        );
        assert_eq!(
            ApiError::from_body(&r.body),
            Some(ApiError::new(ErrorCode::NotFound, "no such job"))
        );
        assert_eq!(reason(404), "Not Found");
        assert_eq!(reason(599), "Unknown");
    }
}

//! A tiny one-shot HTTP client for smoke tests and examples.
//!
//! Deliberately minimal: one request per connection, `Content-Length`
//! bodies only — the mirror image of what [`crate::http`] serves. The
//! end-to-end tests and the README's example session both use it, so the
//! documented workflow is the tested workflow.
//!
//! [`Client`] adds the knobs the bare [`request`] helper hides:
//! configurable connect and read timeouts (builder methods, or the
//! `BARYON_CLIENT_CONNECT_TIMEOUT_MS` / `BARYON_CLIENT_READ_TIMEOUT_MS`
//! environment variables), errors typed by phase so callers can tell a
//! dead server ([`ClientError::Connect`]) from a stalled one
//! ([`ClientError::Timeout`]), and [`Client::request_with_retry`] —
//! exponential backoff with deterministic jitter on `503` backpressure
//! and read timeouts, honouring the server's `Retry-After` header.

use crate::error::{ApiError, ErrorCode};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why a request failed, split by phase so callers can react differently
/// to "server unreachable" and "server accepted the connection but never
/// answered in time". Servers that answered with the uniform error
/// envelope surface as [`ClientError::Api`], carrying the typed
/// [`ErrorCode`] instead of raw status text.
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect failed or timed out: the server is down, the port is
    /// wrong, or the listener's backlog is not being drained.
    Connect(io::Error),
    /// The connection succeeded but the response did not arrive within
    /// the read timeout.
    Timeout(io::Error),
    /// The connection died after the request went out — reset, aborted,
    /// or closed mid-response-body. The server may or may not have
    /// processed the request, so this is retryable for idempotent (GET)
    /// requests only; [`Client::request_with_retry`] honours exactly
    /// that.
    Interrupted(io::Error),
    /// Any other I/O or parse failure after connecting (malformed
    /// response, ...).
    Io(io::Error),
    /// The server answered with an error envelope; the HTTP status plus
    /// the decoded `{code, message}`.
    Api {
        /// The HTTP status code of the error response.
        status: u16,
        /// The decoded envelope.
        error: ApiError,
    },
}

impl ClientError {
    /// The typed API error code, when the failure was an [`Api`] one.
    ///
    /// [`Api`]: ClientError::Api
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Api { error, .. } => Some(error.code),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Timeout(e) => write!(f, "response timed out: {e}"),
            ClientError::Interrupted(e) => write!(f, "connection broke mid-response: {e}"),
            ClientError::Io(e) => write!(f, "request failed: {e}"),
            ClientError::Api { status, error } => write!(f, "server said {status} {error}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect(e)
            | ClientError::Timeout(e)
            | ClientError::Interrupted(e)
            | ClientError::Io(e) => Some(e),
            ClientError::Api { error, .. } => Some(error),
        }
    }
}

impl From<ClientError> for io::Error {
    fn from(e: ClientError) -> io::Error {
        match e {
            ClientError::Connect(e)
            | ClientError::Timeout(e)
            | ClientError::Interrupted(e)
            | ClientError::Io(e) => e,
            ClientError::Api { .. } => io::Error::other(e.to_string()),
        }
    }
}

/// A configured client for one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    connect_timeout: Duration,
    read_timeout: Duration,
    retries: u32,
    backoff_base: Duration,
}

/// Upper bound on a single backoff sleep, so a long `Retry-After` or a
/// deep retry chain cannot park the caller for minutes.
const BACKOFF_CAP: Duration = Duration::from_secs(10);

fn env_ms(name: &str) -> Option<Duration> {
    std::env::var(name)
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()
        .map(Duration::from_millis)
}

impl Client {
    /// A client with default timeouts (5 s connect, 60 s read), overridden
    /// by `BARYON_CLIENT_CONNECT_TIMEOUT_MS` / `BARYON_CLIENT_READ_TIMEOUT_MS`
    /// when set to a millisecond count. Retries are off (`retries == 0`)
    /// until enabled via [`Client::retries`].
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            connect_timeout: env_ms("BARYON_CLIENT_CONNECT_TIMEOUT_MS")
                .unwrap_or(Duration::from_secs(5)),
            read_timeout: env_ms("BARYON_CLIENT_READ_TIMEOUT_MS")
                .unwrap_or(Duration::from_secs(60)),
            retries: 0,
            backoff_base: Duration::from_millis(100),
        }
    }

    /// Sets the TCP connect timeout.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> Client {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the response read timeout.
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> Client {
        self.read_timeout = timeout;
        self
    }

    /// Sets how many times [`Client::request_with_retry`] retries after
    /// `503` or a timeout (so it attempts at most `retries + 1` times).
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Client {
        self.retries = retries;
        self
    }

    /// Sets the first backoff delay; each retry doubles it (capped).
    #[must_use]
    pub fn backoff_base(mut self, base: Duration) -> Client {
        self.backoff_base = base;
        self
    }

    /// Sends one request and reads the full response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the TCP connect fails or exceeds the
    /// connect timeout, [`ClientError::Timeout`] when the response does
    /// not arrive within the read timeout, [`ClientError::Interrupted`]
    /// when the connection resets or closes mid-response,
    /// [`ClientError::Io`] otherwise.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)
            .map_err(ClientError::Connect)?;
        let exchange = || -> io::Result<ClientResponse> {
            stream.set_read_timeout(Some(self.read_timeout))?;
            let mut writer = stream.try_clone()?;
            let body = body.unwrap_or("");
            // One buffer, one write: a server that answers-and-closes
            // early must not break a multi-syscall request mid-stream.
            let request = format!(
                "{method} {path} HTTP/1.1\r\nHost: baryon\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            writer.write_all(request.as_bytes())?;
            writer.flush()?;
            read_response(&mut BufReader::new(&stream))
        };
        exchange().map_err(typed_io_error)
    }

    /// Liveness probe against `GET /v1/healthz` — the cheap endpoint that
    /// allocates no metrics snapshot, so supervisors can poll it at high
    /// frequency without perturbing `serve.*` counters or scrape load.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; a down shard shows up as
    /// [`ClientError::Connect`], a wedged one as [`ClientError::Timeout`].
    pub fn healthz(&self) -> Result<(), ClientError> {
        self.request("GET", "/v1/healthz", None)?
            .into_result()
            .map(|_| ())
    }

    /// `GET /v1/admin/config` — the coordinator's slot-machine state
    /// document (slots, active generation, rollback history).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; non-2xx answers decode into
    /// [`ClientError::Api`].
    pub fn admin_config(&self) -> Result<ClientResponse, ClientError> {
        self.request("GET", "/v1/admin/config", None)?.into_result()
    }

    /// `POST /v1/admin/config/stage` — validates and persists a candidate
    /// policy document into the non-active slot.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with `invalid_json` / `invalid_config` on a
    /// bad candidate, `conflict` while a rollout is in flight.
    pub fn admin_stage(&self, policy_json: &str) -> Result<ClientResponse, ClientError> {
        self.request("POST", "/v1/admin/config/stage", Some(policy_json))?
            .into_result()
    }

    /// `POST /v1/admin/config/commit` — rolling-restarts the fleet onto
    /// the staged slot; auto-rolls-back on a failed health probe/canary.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with `conflict` when nothing is staged or a
    /// rollout is in flight, `rollout_failed` when the fleet rolled back.
    pub fn admin_commit(&self) -> Result<ClientResponse, ClientError> {
        self.request("POST", "/v1/admin/config/commit", None)?
            .into_result()
    }

    /// `POST /v1/admin/config/rollback` — rolling-restarts the fleet back
    /// onto the previous slot.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with `conflict` when there is no previous slot
    /// or a rollout is in flight.
    pub fn admin_rollback(&self) -> Result<ClientResponse, ClientError> {
        self.request("POST", "/v1/admin/config/rollback", None)?
            .into_result()
    }

    /// Opens a streamed (chunked transfer encoding) GET and invokes
    /// `on_line` with each newline-terminated event line as it arrives,
    /// returning once the server terminates the stream. A non-chunked
    /// response is treated as the API refusing to stream: its body is
    /// decoded into [`ClientError::Api`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] / [`ClientError::Timeout`] / [`ClientError::Io`]
    /// as for [`Client::request`]; [`ClientError::Api`] when the server
    /// answered with a plain (error) response instead of a stream.
    pub fn stream(&self, path: &str, on_line: &mut dyn FnMut(&str)) -> Result<(), ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)
            .map_err(ClientError::Connect)?;
        let mut exchange = || -> io::Result<Result<(), ClientResponse>> {
            stream.set_read_timeout(Some(self.read_timeout))?;
            let mut writer = stream.try_clone()?;
            let request = format!(
                "GET {path} HTTP/1.1\r\nHost: baryon\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
            );
            writer.write_all(request.as_bytes())?;
            writer.flush()?;
            let mut reader = BufReader::new(&stream);
            let (status, headers) = read_response_head(&mut reader)?;
            let chunked = headers
                .iter()
                .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
            if !chunked {
                let body = read_response_body(&mut reader, &headers)?;
                return Ok(Err(ClientResponse {
                    status,
                    headers,
                    body,
                }));
            }
            let mut pending = String::new();
            loop {
                let mut size_line = String::new();
                if reader.read_line(&mut size_line)? == 0 {
                    return Err(malformed("connection closed inside chunked stream"));
                }
                let size_str = size_line.trim().split(';').next().unwrap_or("").trim();
                let size =
                    usize::from_str_radix(size_str, 16).map_err(|_| malformed("bad chunk size"))?;
                if size == 0 {
                    break;
                }
                let mut chunk = vec![0u8; size + 2]; // payload + CRLF
                reader.read_exact(&mut chunk)?;
                if &chunk[size..] != b"\r\n" {
                    return Err(malformed("chunk not terminated by CRLF"));
                }
                chunk.truncate(size);
                pending.push_str(
                    std::str::from_utf8(&chunk).map_err(|_| malformed("chunk is not UTF-8"))?,
                );
                while let Some(pos) = pending.find('\n') {
                    on_line(pending[..pos].trim_end_matches('\r'));
                    pending.drain(..=pos);
                }
            }
            if !pending.is_empty() {
                on_line(&pending);
            }
            Ok(Ok(()))
        };
        match exchange() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(response)) => response.into_result().map(|_| ()),
            Err(e) => Err(typed_io_error(e)),
        }
    }

    /// Like [`Client::request`], but retries on `503` responses and read
    /// timeouts with exponential backoff and deterministic jitter. A `503`
    /// carrying `Retry-After: <seconds>` sleeps that long instead of the
    /// backoff (both capped at 10 s). An interrupted response
    /// ([`ClientError::Interrupted`] — reset or close mid-body) is retried
    /// for `GET` only: the server may have already processed the request,
    /// and replaying a `POST` could apply its effect twice. Connect, I/O,
    /// and parse errors are returned immediately — retrying cannot fix a
    /// dead server.
    ///
    /// # Errors
    ///
    /// The last attempt's error, or the final `503` response (as an `Ok`)
    /// once retries are exhausted.
    pub fn request_with_retry(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ClientError> {
        let mut attempt = 0u32;
        loop {
            let wait = match self.request(method, path, body) {
                Ok(r) if r.status == 503 && attempt < self.retries => r
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map(Duration::from_secs),
                Ok(r) => return Ok(r),
                Err(ClientError::Timeout(_)) if attempt < self.retries => None,
                Err(ClientError::Interrupted(_)) if method == "GET" && attempt < self.retries => {
                    None
                }
                Err(e) => return Err(e),
            };
            let delay = wait.unwrap_or_else(|| backoff_delay(self.backoff_base, attempt));
            std::thread::sleep(delay.min(BACKOFF_CAP) + jitter(self.addr, attempt));
            attempt += 1;
        }
    }
}

/// Classifies an I/O failure that happened after the connect succeeded.
///
/// Both `WouldBlock` and `TimedOut` appear in the wild for a read-timeout
/// errno (WouldBlock on Unix, TimedOut on Windows). Reset/abort/EOF kinds
/// mean the peer dropped the connection after the request went out — the
/// retryable-for-GET [`ClientError::Interrupted`] case.
fn typed_io_error(e: io::Error) -> ClientError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout(e),
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => ClientError::Interrupted(e),
        _ => ClientError::Io(e),
    }
}

/// `base << attempt`, saturating, capped at [`BACKOFF_CAP`].
fn backoff_delay(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
        .min(BACKOFF_CAP)
}

/// Deterministic 0–15 ms jitter so a herd of clients hashing different
/// source state desynchronises without any wall-clock randomness.
fn jitter(addr: SocketAddr, attempt: u32) -> Duration {
    let seed = (u64::from(addr.port()) << 32) ^ u64::from(attempt);
    let mixed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    Duration::from_millis(mixed >> 60)
}

/// A parsed response: status code, headers, body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl ClientResponse {
    /// First header value for `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Decodes the uniform error envelope, when this is a non-2xx
    /// response carrying one.
    pub fn api_error(&self) -> Option<ApiError> {
        if self.status < 400 {
            return None;
        }
        ApiError::from_body(&self.body)
    }

    /// Converts a non-2xx response into a typed [`ClientError::Api`]
    /// (falling back to [`ErrorCode::Internal`] with the raw body when
    /// the server did not send a decodable envelope), and passes 2xx
    /// responses through.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] for every status outside `200..300`.
    pub fn into_result(self) -> Result<ClientResponse, ClientError> {
        if (200..300).contains(&self.status) {
            return Ok(self);
        }
        let error = self
            .api_error()
            .unwrap_or_else(|| ApiError::new(ErrorCode::Internal, self.body.clone()));
        Err(ClientError::Api {
            status: self.status,
            error,
        })
    }
}

/// Sends one request with default timeouts and reads the full response.
/// Shorthand for [`Client::new`]`(addr).request(...)` with the typed
/// error flattened back to `io::Error`.
///
/// # Errors
///
/// Propagates connection and I/O failures; a malformed response is
/// `InvalidData`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    Client::new(addr)
        .request(method, path, body)
        .map_err(io::Error::from)
}

fn malformed(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads the status line and headers, leaving the reader at the body.
fn read_response_head(reader: &mut impl BufRead) -> io::Result<(u16, Vec<(String, String)>)> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    // "HTTP/1.1 200 OK"
    let status = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| malformed("malformed status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(malformed("connection closed inside headers"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok((status, headers))
}

/// Reads a `Content-Length` body (or to EOF without one).
fn read_response_body(
    reader: &mut impl BufRead,
    headers: &[(String, String)],
) -> io::Result<String> {
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| malformed("bad Content-Length"))
        })
        .transpose()?;
    match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| malformed("body is not UTF-8"))
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            Ok(buf)
        }
    }
}

fn read_response(reader: &mut impl BufRead) -> io::Result<ClientResponse> {
    let (status, headers) = read_response_head(reader)?;
    let body = read_response_body(reader, &headers)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_with_content_length() {
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 5\r\n\r\nhello";
        let r = read_response(&mut BufReader::new(&raw[..])).expect("well-formed");
        assert_eq!(r.status, 503);
        assert_eq!(r.header("retry-after"), Some("1"));
        assert_eq!(r.header("Retry-After"), Some("1"));
        assert_eq!(r.body, "hello");
    }

    #[test]
    fn parses_a_response_without_content_length_to_eof() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\nrest";
        let r = read_response(&mut BufReader::new(&raw[..])).expect("well-formed");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "rest");
    }

    #[test]
    fn malformed_responses_rejected() {
        for bad in [
            b"NOPE\r\n\r\n".as_slice(),
            b"HTTP/1.1 abc OK\r\n\r\n",
            b"HTTP/1.1 200 OK\r\nbad-header\r\n\r\n",
            b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(read_response(&mut BufReader::new(bad)).is_err());
        }
    }

    /// Serves each canned response to one connection, in order, without
    /// reading the request (small requests fit the socket buffer).
    fn canned_server(responses: &'static [&'static str]) -> SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            for resp in responses {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                // Consume the whole request (up to the header terminator;
                // these tests send empty bodies) before answering, so
                // closing the socket cannot RST unread data away.
                let mut buf = Vec::new();
                let mut chunk = [0u8; 256];
                while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    match std::io::Read::read(&mut stream, &mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    }
                }
                let _ = stream.write_all(resp.as_bytes());
            }
        });
        addr
    }

    #[test]
    fn connect_failure_is_typed() {
        // Bind then drop to get a loopback port that refuses connections.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let err = Client::new(addr)
            .connect_timeout(Duration::from_millis(500))
            .request("GET", "/v1/healthz", None)
            .expect_err("nobody is listening");
        assert!(matches!(err, ClientError::Connect(_)), "{err}");
    }

    #[test]
    fn silent_server_is_a_read_timeout() {
        // The listener accepts into its backlog but never answers.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let err = Client::new(addr)
            .read_timeout(Duration::from_millis(50))
            .request("GET", "/v1/healthz", None)
            .expect_err("no response ever comes");
        assert!(matches!(err, ClientError::Timeout(_)), "{err}");
    }

    #[test]
    fn retry_recovers_from_backpressure() {
        let addr = canned_server(&[
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 0\r\n\r\n",
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok",
        ]);
        let r = Client::new(addr)
            .retries(2)
            .backoff_base(Duration::from_millis(1))
            .request_with_retry("GET", "/v1/metrics", None)
            .expect("second attempt succeeds");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "ok");
    }

    #[test]
    fn reset_mid_body_is_a_typed_interrupted_error() {
        // The harness promises 10 body bytes, sends 3, and drops the
        // connection — the client must type this as Interrupted, not as
        // a generic I/O or parse failure.
        let addr = canned_server(&["HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhel"]);
        let err = Client::new(addr)
            .request("GET", "/v1/metrics", None)
            .expect_err("body cut short mid-flight");
        assert!(matches!(err, ClientError::Interrupted(_)), "{err:?}");
    }

    #[test]
    fn get_retry_recovers_from_a_mid_body_reset() {
        let addr = canned_server(&[
            "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhel",
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok",
        ]);
        let r = Client::new(addr)
            .retries(2)
            .backoff_base(Duration::from_millis(1))
            .request_with_retry("GET", "/v1/metrics", None)
            .expect("second attempt completes");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "ok");
    }

    #[test]
    fn post_is_never_replayed_after_an_interrupted_response() {
        // Same two-act harness as above, but a POST: the first (broken)
        // response must surface as Interrupted without touching the
        // second connection — replaying could apply the effect twice.
        let addr = canned_server(&[
            "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhel",
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok",
        ]);
        let err = Client::new(addr)
            .retries(2)
            .backoff_base(Duration::from_millis(1))
            .request_with_retry("POST", "/v1/jobs", Some("{}"))
            .expect_err("POST must not retry an interrupted exchange");
        assert!(matches!(err, ClientError::Interrupted(_)), "{err:?}");
    }

    #[test]
    fn exhausted_retries_surface_the_final_503() {
        let addr = canned_server(&[
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n",
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n",
        ]);
        let r = Client::new(addr)
            .retries(1)
            .backoff_base(Duration::from_millis(1))
            .request_with_retry("GET", "/v1/metrics", None)
            .expect("a 503 response is still a response");
        assert_eq!(r.status, 503);
    }

    #[test]
    fn envelopes_decode_into_typed_api_errors() {
        let body = r#"{"error":{"code":"queue_full","message":"queue full, retry later"}}"#;
        let raw = format!(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let r = read_response(&mut BufReader::new(raw.as_bytes())).expect("well-formed");
        assert_eq!(
            r.api_error(),
            Some(ApiError::new(
                ErrorCode::QueueFull,
                "queue full, retry later"
            ))
        );
        let err = r.into_result().expect_err("503 is an error");
        assert_eq!(err.code(), Some(ErrorCode::QueueFull));
        assert!(err.to_string().contains("queue_full"), "{err}");

        // A 2xx passes through untouched; a bare-body error falls back to
        // `internal` instead of being dropped.
        let ok = ClientResponse {
            status: 200,
            headers: Vec::new(),
            body: "{}".into(),
        };
        assert!(ok.api_error().is_none());
        assert!(ok.into_result().is_ok());
        let legacy = ClientResponse {
            status: 500,
            headers: Vec::new(),
            body: "oops".into(),
        };
        let err = legacy.into_result().expect_err("500 is an error");
        assert_eq!(err.code(), Some(ErrorCode::Internal));
    }

    #[test]
    fn healthz_maps_status_to_result() {
        let addr = canned_server(&[
            "HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n{\"ok\":true}",
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n",
        ]);
        let client = Client::new(addr);
        client.healthz().expect("first probe healthy");
        let err = client.healthz().expect_err("second probe unhealthy");
        assert!(matches!(err, ClientError::Api { status: 503, .. }), "{err}");
    }

    #[test]
    fn stream_decodes_chunked_event_lines() {
        let addr = canned_server(&[
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n\
             3\r\na\nb\r\n2\r\nc\n\r\n0\r\n\r\n",
        ]);
        let mut lines = Vec::new();
        Client::new(addr)
            .stream("/v1/jobs/1/events", &mut |line| lines.push(line.to_owned()))
            .expect("stream completes");
        assert_eq!(lines, ["a", "bc"]);
    }

    #[test]
    fn stream_surfaces_plain_error_responses_as_api_errors() {
        let body = r#"{"error":{"code":"not_found","message":"no such job"}}"#;
        let raw: &'static str = Box::leak(
            format!(
                "HTTP/1.1 404 Not Found\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_boxed_str(),
        );
        let addr = canned_server(Box::leak(Box::new([raw])));
        let err = Client::new(addr)
            .stream("/v1/jobs/999/events", &mut |_| {})
            .expect_err("404 is not a stream");
        assert_eq!(err.code(), Some(ErrorCode::NotFound));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(100);
        assert_eq!(backoff_delay(base, 0), Duration::from_millis(100));
        assert_eq!(backoff_delay(base, 1), Duration::from_millis(200));
        assert_eq!(backoff_delay(base, 3), Duration::from_millis(800));
        assert_eq!(backoff_delay(base, 20), BACKOFF_CAP);
        // A shift past 31 saturates instead of wrapping back to short waits.
        assert_eq!(backoff_delay(base, 64), BACKOFF_CAP);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let addr: SocketAddr = "127.0.0.1:8677".parse().expect("addr");
        for attempt in 0..8 {
            let j = jitter(addr, attempt);
            assert_eq!(j, jitter(addr, attempt), "same inputs, same jitter");
            assert!(j < Duration::from_millis(16), "{j:?}");
        }
    }

    #[test]
    fn env_overrides_parse_milliseconds() {
        assert_eq!(env_ms("BARYON_CLIENT_TEST_UNSET_VAR"), None);
        // Builder overrides always win over defaults.
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let c = Client::new(addr)
            .connect_timeout(Duration::from_millis(7))
            .read_timeout(Duration::from_millis(9));
        assert_eq!(c.connect_timeout, Duration::from_millis(7));
        assert_eq!(c.read_timeout, Duration::from_millis(9));
    }
}

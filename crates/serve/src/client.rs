//! A tiny one-shot HTTP client for smoke tests and examples.
//!
//! Deliberately minimal: one request per connection, `Content-Length`
//! bodies only — the mirror image of what [`crate::http`] serves. The
//! end-to-end tests and the README's example session both use it, so the
//! documented workflow is the tested workflow.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers, body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl ClientResponse {
    /// First header value for `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Propagates connection and I/O failures; a malformed response is
/// `InvalidData`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut writer = stream.try_clone()?;
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: baryon\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()?;
    read_response(&mut BufReader::new(stream))
}

fn malformed(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_response(reader: &mut impl BufRead) -> io::Result<ClientResponse> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    // "HTTP/1.1 200 OK"
    let status = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| malformed("malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(malformed("connection closed inside headers"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("malformed header line"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = Some(value.parse().map_err(|_| malformed("bad Content-Length"))?);
        }
        headers.push((name, value));
    }
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            String::from_utf8(buf).map_err(|_| malformed("body is not UTF-8"))?
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_with_content_length() {
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 5\r\n\r\nhello";
        let r = read_response(&mut BufReader::new(&raw[..])).expect("well-formed");
        assert_eq!(r.status, 503);
        assert_eq!(r.header("retry-after"), Some("1"));
        assert_eq!(r.header("Retry-After"), Some("1"));
        assert_eq!(r.body, "hello");
    }

    #[test]
    fn parses_a_response_without_content_length_to_eof() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\nrest";
        let r = read_response(&mut BufReader::new(&raw[..])).expect("well-formed");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "rest");
    }

    #[test]
    fn malformed_responses_rejected() {
        for bad in [
            b"NOPE\r\n\r\n".as_slice(),
            b"HTTP/1.1 abc OK\r\n\r\n",
            b"HTTP/1.1 200 OK\r\nbad-header\r\n\r\n",
            b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(read_response(&mut BufReader::new(bad)).is_err());
        }
    }
}

#![warn(missing_docs)]

//! `baryon-serve` — simulation-as-a-service for the Baryon reproduction.
//!
//! A zero-dependency HTTP/1.1 job server on [`std::net::TcpListener`]:
//! clients `POST` simulation jobs (single runs or workloads × controllers
//! grids, as JSON), a fixed worker pool executes them through the same
//! [`baryon_bench::spec`] path `baryon-cli run` uses, and clients poll for
//! status and fetch `RunResult` JSON. The queue is bounded: when it fills,
//! submissions get `503` + `Retry-After` instead of unbounded buffering.
//!
//! # Endpoints
//!
//! | Method & path             | Purpose                                        |
//! |---------------------------|------------------------------------------------|
//! | `POST /v1/jobs`           | Submit a run or grid spec; `202` + job ID      |
//! | `GET /v1/jobs/<id>`       | Status + result document once done             |
//! | `GET /v1/jobs/<id>/events` | Chunked stream of progress events until settled |
//! | `POST /v1/jobs/<id>/cancel` | Cancel a still-queued job                    |
//! | `GET /v1/metrics`         | Serve-layer counters (queue depth, latency…)   |
//! | `GET /v1/metrics?format=wire` | Full-fidelity registry bytes (hex) for fleet merging |
//! | `GET /v1/healthz`         | Liveness probe (no metrics snapshot allocated) |
//! | `POST /v1/shutdown`       | Graceful shutdown, draining accepted jobs      |
//!
//! Every non-2xx response carries the uniform error envelope
//! `{"error": {"code": "...", "message": "..."}}`; see [`error::ErrorCode`]
//! for the machine-readable codes. `GET /v1/metrics` serves the unified
//! telemetry registry document (`{"counters", "gauges", "summaries"}`).
//!
//! # Example
//!
//! ```
//! use baryon_serve::{client, Server, ServeConfig};
//!
//! let server = Server::bind(ServeConfig {
//!     port: 0, // ephemeral
//!     workers: 1,
//!     queue_depth: 4,
//!     ..ServeConfig::default()
//! })
//! .expect("bind loopback");
//! let addr = server.local_addr();
//! let handle = std::thread::spawn(move || server.run());
//!
//! let health = client::request(addr, "GET", "/v1/healthz", None).expect("reachable");
//! assert_eq!(health.status, 200);
//!
//! client::request(addr, "POST", "/v1/shutdown", None).expect("shutdown");
//! handle.join().expect("no panic").expect("clean exit");
//! ```
//!
//! Determinism carries over the wire: a job's result document is
//! byte-identical to `baryon-cli run --json` with the same spec, because
//! both funnel through [`baryon_bench::spec::RunSpec::execute`].

pub mod client;
pub mod error;
pub mod http;
pub mod job;
pub mod journal;
pub mod progress;
pub mod queue;
pub mod server;

pub use error::{ApiError, ErrorCode};
pub use server::{Metrics, ServeConfig, Server};

//! Job lifecycle: monotonic IDs, state machine, and the shared table the
//! HTTP handlers and workers both consult.
//!
//! States move strictly forward:
//!
//! ```text
//! queued ──▶ running ──▶ done | failed
//!    └─────▶ cancelled                  (only queued jobs can be cancelled)
//! ```

use baryon_bench::spec::JobSpec;
use baryon_sim::json::Json;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; the result document is available.
    Done,
    /// Finished with an error (bad spec caught late, or a worker panic).
    Failed,
    /// Cancelled while still queued; it will never run.
    Cancelled,
}

impl JobState {
    /// The wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True once the job can no longer change state (done, failed, or
    /// cancelled) — event streams end on this.
    pub fn is_settled(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// One job's full record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Monotonic ID (1-based, in submission order).
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The submitted spec, for echoing back in status documents.
    pub spec: JobSpec,
    /// Result document once `Done`.
    pub result: Option<Json>,
    /// Error message once `Failed`.
    pub error: Option<String>,
    /// Execution wall time in microseconds, once finished.
    pub wall_us: Option<u64>,
}

impl JobRecord {
    /// The status document served by `GET /v1/jobs/<id>`.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_owned(), Json::from(self.id)),
            ("state".to_owned(), Json::from(self.state.as_str())),
            ("runs".to_owned(), Json::from(self.spec.runs())),
            ("spec".to_owned(), self.spec.to_json()),
        ];
        if let Some(us) = self.wall_us {
            pairs.push(("wall_us".to_owned(), Json::from(us)));
        }
        if let Some(err) = &self.error {
            pairs.push(("error".to_owned(), Json::from(err.as_str())));
        }
        if let Some(result) = &self.result {
            pairs.push(("result".to_owned(), result.clone()));
        }
        Json::Obj(pairs)
    }
}

/// Outcome of a cancellation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was queued and is now cancelled.
    Cancelled,
    /// The job exists but already left the queue (running or finished).
    TooLate(JobState),
    /// No such job.
    NotFound,
}

#[derive(Default)]
struct TableInner {
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
    evicted: u64,
}

/// Evicts the oldest finished (done / failed / cancelled) jobs beyond
/// `cap`, so a long-lived server's table cannot grow without bound.
/// Queued and running jobs are never evicted. Returns how many went.
fn evict_excess(inner: &mut TableInner, cap: usize) -> u64 {
    let terminal =
        |s: JobState| matches!(s, JobState::Done | JobState::Failed | JobState::Cancelled);
    // BTreeMap iterates in ascending ID order, so this list is
    // oldest-first and the front is what goes.
    let finished: Vec<u64> = inner
        .jobs
        .values()
        .filter(|r| terminal(r.state))
        .map(|r| r.id)
        .collect();
    let excess = finished.len().saturating_sub(cap);
    for id in &finished[..excess] {
        inner.jobs.remove(id);
    }
    inner.evicted += excess as u64;
    excess as u64
}

/// The shared, locked registry of every job this server has seen.
pub struct JobTable {
    inner: Mutex<TableInner>,
    finished_cap: usize,
}

impl Default for JobTable {
    fn default() -> Self {
        JobTable {
            inner: Mutex::default(),
            finished_cap: usize::MAX,
        }
    }
}

impl JobTable {
    /// Creates an empty table with unbounded retention.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table that retains at most `cap` finished jobs
    /// (the oldest beyond that are evicted as new ones settle).
    pub fn with_finished_cap(cap: usize) -> Self {
        JobTable {
            inner: Mutex::default(),
            finished_cap: cap.max(1),
        }
    }

    /// Registers a new queued job and returns its ID.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        let mut inner = self.inner.lock().expect("job table lock poisoned");
        inner.next_id += 1;
        let id = inner.next_id;
        inner.jobs.insert(
            id,
            JobRecord {
                id,
                state: JobState::Queued,
                spec,
                result: None,
                error: None,
                wall_us: None,
            },
        );
        id
    }

    /// Re-installs a record reconstructed from the journal, preserving
    /// its original ID. The ID counter is floored so new submissions
    /// never collide with recovered jobs.
    pub fn install(&self, record: JobRecord) {
        let mut inner = self.inner.lock().expect("job table lock poisoned");
        inner.next_id = inner.next_id.max(record.id);
        inner.jobs.insert(record.id, record);
        evict_excess(&mut inner, self.finished_cap);
    }

    /// Raises the ID counter so future submissions start above `floor` —
    /// used at recovery so new IDs never collide with journaled ones.
    pub fn floor_next_id(&self, floor: u64) {
        let mut inner = self.inner.lock().expect("job table lock poisoned");
        inner.next_id = inner.next_id.max(floor);
    }

    /// Total finished jobs evicted by the retention cap so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().expect("job table lock poisoned").evicted
    }

    /// Removes a job that was never enqueued (its queue push was refused),
    /// so a rejected submission leaves no trace.
    pub fn forget(&self, id: u64) {
        self.inner
            .lock()
            .expect("job table lock poisoned")
            .jobs
            .remove(&id);
    }

    /// A snapshot of one job's record.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.inner
            .lock()
            .expect("job table lock poisoned")
            .jobs
            .get(&id)
            .cloned()
    }

    /// Current state only (cheaper than [`JobTable::get`]).
    pub fn state(&self, id: u64) -> Option<JobState> {
        self.inner
            .lock()
            .expect("job table lock poisoned")
            .jobs
            .get(&id)
            .map(|r| r.state)
    }

    /// Cancels a queued job.
    pub fn cancel(&self, id: u64) -> CancelOutcome {
        let mut inner = self.inner.lock().expect("job table lock poisoned");
        match inner.jobs.get_mut(&id) {
            None => CancelOutcome::NotFound,
            Some(record) if record.state == JobState::Queued => {
                record.state = JobState::Cancelled;
                evict_excess(&mut inner, self.finished_cap);
                CancelOutcome::Cancelled
            }
            Some(record) => CancelOutcome::TooLate(record.state),
        }
    }

    /// Transitions a job to `Running`; returns the spec to execute, or
    /// `None` if the job was cancelled while queued (the worker skips it).
    pub fn start(&self, id: u64) -> Option<JobSpec> {
        let mut inner = self.inner.lock().expect("job table lock poisoned");
        let record = inner.jobs.get_mut(&id)?;
        if record.state != JobState::Queued {
            return None;
        }
        record.state = JobState::Running;
        Some(record.spec.clone())
    }

    /// Records a finished execution. Only `Running` jobs transition;
    /// returns whether the outcome landed. A `false` means someone else
    /// already settled the job — e.g. the deadline watchdog failed it and
    /// this is the runner's late result, which must be discarded so the
    /// job's terminal state never flips.
    pub fn finish(&self, id: u64, outcome: Result<Json, String>, wall_us: u64) -> bool {
        let mut inner = self.inner.lock().expect("job table lock poisoned");
        let Some(record) = inner.jobs.get_mut(&id) else {
            return false;
        };
        if record.state != JobState::Running {
            return false;
        }
        record.wall_us = Some(wall_us);
        match outcome {
            Ok(result) => {
                record.state = JobState::Done;
                record.result = Some(result);
            }
            Err(message) => {
                record.state = JobState::Failed;
                record.error = Some(message);
            }
        }
        evict_excess(&mut inner, self.finished_cap);
        true
    }

    /// Number of jobs ever submitted (== the highest ID so far).
    pub fn submitted(&self) -> u64 {
        self.inner.lock().expect("job table lock poisoned").next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baryon_bench::spec::RunSpec;

    fn spec() -> JobSpec {
        JobSpec::Run(RunSpec::default())
    }

    #[test]
    fn ids_are_monotonic_from_one() {
        let t = JobTable::new();
        assert_eq!(t.submit(spec()), 1);
        assert_eq!(t.submit(spec()), 2);
        assert_eq!(t.submitted(), 2);
    }

    #[test]
    fn lifecycle_happy_path() {
        let t = JobTable::new();
        let id = t.submit(spec());
        assert_eq!(t.state(id), Some(JobState::Queued));
        assert!(t.start(id).is_some());
        assert_eq!(t.state(id), Some(JobState::Running));
        t.finish(id, Ok(Json::Null), 123);
        let r = t.get(id).expect("exists");
        assert_eq!(r.state, JobState::Done);
        assert_eq!(r.wall_us, Some(123));
        assert_eq!(r.result, Some(Json::Null));
        assert!(r.error.is_none());
    }

    #[test]
    fn failure_records_error() {
        let t = JobTable::new();
        let id = t.submit(spec());
        t.start(id);
        t.finish(id, Err("boom".into()), 5);
        let r = t.get(id).expect("exists");
        assert_eq!(r.state, JobState::Failed);
        assert_eq!(r.error.as_deref(), Some("boom"));
        assert!(r.result.is_none());
    }

    #[test]
    fn cancel_only_while_queued() {
        let t = JobTable::new();
        let id = t.submit(spec());
        assert_eq!(t.cancel(id), CancelOutcome::Cancelled);
        assert_eq!(t.state(id), Some(JobState::Cancelled));
        // A cancelled job never starts.
        assert!(t.start(id).is_none());

        let id2 = t.submit(spec());
        t.start(id2);
        assert_eq!(t.cancel(id2), CancelOutcome::TooLate(JobState::Running));
        assert_eq!(t.cancel(999), CancelOutcome::NotFound);
    }

    #[test]
    fn finish_only_lands_on_running_jobs() {
        let t = JobTable::new();
        let id = t.submit(spec());
        // Not started yet: a stray result must not settle a queued job.
        assert!(!t.finish(id, Ok(Json::Null), 1));
        assert_eq!(t.state(id), Some(JobState::Queued));

        t.start(id);
        assert!(t.finish(id, Err("deadline exceeded".into()), 2));
        // The runner's late success arrives after the watchdog failed it:
        // discarded, the terminal state never flips.
        assert!(!t.finish(id, Ok(Json::Null), 3));
        let r = t.get(id).expect("exists");
        assert_eq!(r.state, JobState::Failed);
        assert_eq!(r.error.as_deref(), Some("deadline exceeded"));
        assert_eq!(r.wall_us, Some(2));
        assert!(r.result.is_none());

        assert!(!t.finish(999, Ok(Json::Null), 4), "unknown job");
    }

    #[test]
    fn forget_removes_rejected_submissions() {
        let t = JobTable::new();
        let id = t.submit(spec());
        t.forget(id);
        assert!(t.get(id).is_none());
        // IDs are not reused.
        assert_eq!(t.submit(spec()), id + 1);
    }

    #[test]
    fn finished_jobs_are_bounded_oldest_first() {
        let t = JobTable::with_finished_cap(2);
        // Settle four jobs; the two oldest must be evicted.
        for _ in 0..4 {
            let id = t.submit(spec());
            t.start(id);
            t.finish(id, Ok(Json::Null), 1);
        }
        assert_eq!(t.evictions(), 2);
        assert!(t.get(1).is_none());
        assert!(t.get(2).is_none());
        assert!(t.get(3).is_some());
        assert!(t.get(4).is_some());
        // Live jobs never count against the cap and are never evicted.
        let live = t.submit(spec());
        t.start(live);
        let id = t.submit(spec());
        t.start(id);
        t.finish(id, Err("x".into()), 1);
        assert_eq!(t.evictions(), 3);
        assert_eq!(t.state(live), Some(JobState::Running));
        // Cancellation settles a job too.
        let id = t.submit(spec());
        t.cancel(id);
        assert_eq!(t.evictions(), 4);
        // IDs keep climbing even though old records are gone.
        assert_eq!(t.submit(spec()), 8);
    }

    #[test]
    fn install_preserves_ids_and_floors_the_counter() {
        let t = JobTable::new();
        t.install(JobRecord {
            id: 7,
            state: JobState::Done,
            spec: spec(),
            result: Some(Json::Null),
            error: None,
            wall_us: None,
        });
        assert_eq!(t.state(7), Some(JobState::Done));
        assert_eq!(t.submit(spec()), 8, "new IDs start above recovered ones");
    }

    #[test]
    fn status_document_shape() {
        let t = JobTable::new();
        let id = t.submit(spec());
        let text = t.get(id).expect("exists").to_json().render();
        assert!(text.contains("\"id\":1"), "{text}");
        assert!(text.contains("\"state\":\"queued\""), "{text}");
        assert!(text.contains("\"spec\":{"), "{text}");
        assert!(!text.contains("\"result\""), "{text}");
        t.start(id);
        t.finish(id, Ok(Json::obj([("x", Json::from(1u64))])), 9);
        let text = t.get(id).expect("exists").to_json().render();
        assert!(text.contains("\"state\":\"done\""), "{text}");
        assert!(text.contains("\"wall_us\":9"), "{text}");
        assert!(text.contains("\"result\":{\"x\":1}"), "{text}");
    }
}

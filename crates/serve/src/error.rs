//! The uniform API error envelope shared by the server and the client.
//!
//! Every non-2xx response body is `{"error": {"code": "...", "message":
//! "..."}}`. The machine-readable [`ErrorCode`] is the contract — clients
//! branch on it instead of grepping message text — while the message stays
//! free-form for humans.

use baryon_sim::json::{self, Json};

/// Machine-readable error categories of the serve API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed HTTP or a body that is not UTF-8.
    BadRequest,
    /// The body is not valid JSON.
    InvalidJson,
    /// Valid JSON, but not a valid job spec.
    InvalidSpec,
    /// Unknown endpoint, unknown job, or a non-integer job ID.
    NotFound,
    /// Known endpoint, wrong method.
    MethodNotAllowed,
    /// The job exists but is in a state that forbids the action.
    Conflict,
    /// Backpressure: the job queue is full; retry later.
    QueueFull,
    /// The client has too many jobs in flight; retry after some finish.
    QuotaExceeded,
    /// The server is draining and refuses new work.
    ShuttingDown,
    /// A staged fleet policy failed validation.
    InvalidConfig,
    /// A config commit could not be completed (a shard failed its health
    /// probe or canary and the fleet rolled back, or a rollout is already
    /// in flight).
    RolloutFailed,
    /// Anything else that went wrong server-side.
    Internal,
}

impl ErrorCode {
    /// The wire string of this code (`"queue_full"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::InvalidJson => "invalid_json",
            ErrorCode::InvalidSpec => "invalid_spec",
            ErrorCode::NotFound => "not_found",
            ErrorCode::MethodNotAllowed => "method_not_allowed",
            ErrorCode::Conflict => "conflict",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::InvalidConfig => "invalid_config",
            ErrorCode::RolloutFailed => "rollout_failed",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire string back into a code.
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "invalid_json" => ErrorCode::InvalidJson,
            "invalid_spec" => ErrorCode::InvalidSpec,
            "not_found" => ErrorCode::NotFound,
            "method_not_allowed" => ErrorCode::MethodNotAllowed,
            "conflict" => ErrorCode::Conflict,
            "queue_full" => ErrorCode::QueueFull,
            "quota_exceeded" => ErrorCode::QuotaExceeded,
            "shutting_down" => ErrorCode::ShuttingDown,
            "invalid_config" => ErrorCode::InvalidConfig,
            "rollout_failed" => ErrorCode::RolloutFailed,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The canonical HTTP status for this code.
    pub fn status(self) -> u16 {
        match self {
            ErrorCode::BadRequest
            | ErrorCode::InvalidJson
            | ErrorCode::InvalidSpec
            | ErrorCode::InvalidConfig => 400,
            ErrorCode::NotFound => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::Conflict | ErrorCode::RolloutFailed => 409,
            ErrorCode::QuotaExceeded => 429,
            ErrorCode::QueueFull | ErrorCode::ShuttingDown => 503,
            ErrorCode::Internal => 500,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A decoded error envelope: the typed code plus the human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Builds the envelope.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ApiError {
        ApiError {
            code,
            message: message.into(),
        }
    }

    /// Serializes as `{"error": {"code": ..., "message": ...}}`.
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "error",
            Json::obj([
                ("code", Json::from(self.code.as_str())),
                ("message", Json::from(self.message.as_str())),
            ]),
        )])
    }

    /// Decodes an envelope from a response body. Returns `None` unless the
    /// body is the exact `{"error": {"code", "message"}}` shape with a
    /// known code.
    pub fn from_body(body: &str) -> Option<ApiError> {
        let doc = json::parse(body).ok()?;
        let Json::Obj(top) = doc else { return None };
        let Json::Obj(err) = &top.iter().find(|(k, _)| k == "error")?.1 else {
            return None;
        };
        let field =
            |name: &str| -> Option<&Json> { err.iter().find(|(k, _)| k == name).map(|(_, v)| v) };
        let Json::Str(code) = field("code")? else {
            return None;
        };
        let Json::Str(message) = field("message")? else {
            return None;
        };
        Some(ApiError {
            code: ErrorCode::parse(code)?,
            message: message.clone(),
        })
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [ErrorCode; 12] = [
        ErrorCode::BadRequest,
        ErrorCode::InvalidJson,
        ErrorCode::InvalidSpec,
        ErrorCode::NotFound,
        ErrorCode::MethodNotAllowed,
        ErrorCode::Conflict,
        ErrorCode::QueueFull,
        ErrorCode::QuotaExceeded,
        ErrorCode::ShuttingDown,
        ErrorCode::InvalidConfig,
        ErrorCode::RolloutFailed,
        ErrorCode::Internal,
    ];

    #[test]
    fn codes_round_trip_through_wire_strings() {
        for code in ALL {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }

    #[test]
    fn every_code_maps_to_an_error_status() {
        for code in ALL {
            assert!((400..=599).contains(&code.status()), "{code}");
        }
    }

    #[test]
    fn envelope_round_trips_through_json() {
        let e = ApiError::new(ErrorCode::QueueFull, "queue full, retry later");
        let body = e.to_json().render();
        assert_eq!(
            body,
            r#"{"error":{"code":"queue_full","message":"queue full, retry later"}}"#
        );
        assert_eq!(ApiError::from_body(&body), Some(e));
    }

    #[test]
    fn malformed_envelopes_decode_to_none() {
        for bad in [
            "",
            "{}",
            r#"{"error":"flat string"}"#,
            r#"{"error":{"code":"nope","message":"x"}}"#,
            r#"{"error":{"code":"conflict"}}"#,
        ] {
            assert_eq!(ApiError::from_body(bad), None, "{bad}");
        }
    }
}

//! Live per-job progress shared between workers and event streams.
//!
//! Workers publish [`JobProgress`] snapshots into the [`ProgressBoard`] as
//! their run advances (fed by the simulator's incremental `RunCursor`
//! execution); each `GET /v1/jobs/<id>/events` stream blocks on the board
//! and emits a chunk whenever the snapshot's sequence number moves. The
//! board is observational only — publishing never perturbs a run, and a
//! job with no subscribers pays one mutex lock per observation interval.

use baryon_sim::json::Json;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One job's latest progress snapshot. For single runs the simulator
/// fields (`phase`, `ops`, `insts_done`, `insts_target`, `cycles`) carry
/// the signal and `cells_total` is 1; for grids the cell counters carry it
/// and the simulator fields describe the cell currently executing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobProgress {
    /// Bumps on every publish; streams emit when it moves past what they
    /// last sent, so `seq` is strictly monotonic within one stream.
    pub seq: u64,
    /// Run phase: `warmup`, `measure`, or `done`.
    pub phase: &'static str,
    /// Trace operations executed since the (current cell's) run began.
    /// Strictly monotonic over a single run — the ordering guarantee
    /// streamed consumers assert on.
    pub ops: u64,
    /// Instructions retired so far (cumulative across warmup + measure).
    pub insts_done: u64,
    /// Instruction target (steps up once at the warmup/measure boundary).
    pub insts_target: u64,
    /// Measure-phase cycles so far (0 during warmup).
    pub cycles: u64,
    /// Grid cells completed.
    pub cells_done: u64,
    /// Total grid cells (1 for a single run).
    pub cells_total: u64,
}

impl JobProgress {
    /// The event-stream JSON for this snapshot (without the `event` tag —
    /// the stream layer wraps it).
    pub fn to_json(&self, id: u64) -> Json {
        Json::obj([
            ("event", Json::from("progress")),
            ("id", Json::from(id)),
            ("seq", Json::from(self.seq)),
            ("phase", Json::from(self.phase)),
            ("ops", Json::from(self.ops)),
            ("insts_done", Json::from(self.insts_done)),
            ("insts_target", Json::from(self.insts_target)),
            ("cycles", Json::from(self.cycles)),
            ("cells_done", Json::from(self.cells_done)),
            ("cells_total", Json::from(self.cells_total)),
        ])
    }
}

/// The shared progress table: job ID → latest snapshot, with a condvar so
/// event streams can sleep until something moves.
#[derive(Default)]
pub struct ProgressBoard {
    inner: Mutex<HashMap<u64, JobProgress>>,
    moved: Condvar,
}

impl ProgressBoard {
    /// Creates an empty board.
    pub fn new() -> ProgressBoard {
        ProgressBoard::default()
    }

    /// Publishes an update for `id`: `apply` mutates the job's snapshot
    /// (created zeroed on first publish), the sequence number bumps, and
    /// every waiting stream wakes.
    pub fn publish(&self, id: u64, apply: impl FnOnce(&mut JobProgress)) {
        let mut inner = self.inner.lock().expect("progress lock poisoned");
        let entry = inner.entry(id).or_default();
        apply(entry);
        entry.seq += 1;
        drop(inner);
        self.moved.notify_all();
    }

    /// The latest snapshot for `id`, if the job has published anything.
    pub fn get(&self, id: u64) -> Option<JobProgress> {
        self.inner
            .lock()
            .expect("progress lock poisoned")
            .get(&id)
            .cloned()
    }

    /// Blocks until `id` has a snapshot with `seq > after`, or `timeout`
    /// elapses. Returns the newer snapshot, or `None` on timeout (callers
    /// re-check job state and come back — settled jobs stop publishing).
    pub fn wait_past(&self, id: u64, after: u64, timeout: Duration) -> Option<JobProgress> {
        let inner = self.inner.lock().expect("progress lock poisoned");
        let (inner, timed_out) = self
            .moved
            .wait_timeout_while(inner, timeout, |map| {
                map.get(&id).is_none_or(|p| p.seq <= after)
            })
            .map(|(guard, result)| (guard, result.timed_out()))
            .expect("progress lock poisoned");
        if timed_out {
            return None;
        }
        inner.get(&id).cloned()
    }

    /// Drops a settled job's snapshot (its final state now lives in the
    /// job table; keeping board entries for evicted jobs would leak).
    pub fn remove(&self, id: u64) {
        self.inner
            .lock()
            .expect("progress lock poisoned")
            .remove(&id);
        self.moved.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publish_bumps_seq_and_get_sees_it() {
        let board = ProgressBoard::new();
        assert_eq!(board.get(7), None);
        board.publish(7, |p| {
            p.phase = "warmup";
            p.ops = 100;
            p.cells_total = 1;
        });
        let p = board.get(7).expect("published");
        assert_eq!(p.seq, 1);
        assert_eq!(p.ops, 100);
        board.publish(7, |p| p.ops = 200);
        let p = board.get(7).expect("published");
        assert_eq!(p.seq, 2);
        assert_eq!(p.ops, 200);
        board.remove(7);
        assert_eq!(board.get(7), None);
    }

    #[test]
    fn wait_past_times_out_without_updates() {
        let board = ProgressBoard::new();
        board.publish(1, |p| p.ops = 1);
        assert!(board.wait_past(1, 1, Duration::from_millis(10)).is_none());
        // seq 1 already satisfies `after = 0` — returns immediately.
        let p = board
            .wait_past(1, 0, Duration::from_millis(10))
            .expect("already past");
        assert_eq!(p.seq, 1);
    }

    #[test]
    fn wait_past_wakes_on_publish() {
        let board = Arc::new(ProgressBoard::new());
        let waiter = Arc::clone(&board);
        let handle = std::thread::spawn(move || waiter.wait_past(9, 0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        board.publish(9, |p| p.ops = 42);
        let p = handle.join().expect("no panic").expect("woken");
        assert_eq!(p.ops, 42);
    }

    #[test]
    fn progress_json_shape() {
        let mut p = JobProgress {
            seq: 3,
            phase: "measure",
            ops: 500,
            insts_done: 400,
            insts_target: 1000,
            cycles: 2000,
            cells_done: 0,
            cells_total: 1,
        };
        let text = p.to_json(12).render();
        assert!(
            text.starts_with("{\"event\":\"progress\",\"id\":12,\"seq\":3,"),
            "{text}"
        );
        assert!(text.contains("\"phase\":\"measure\""), "{text}");
        assert!(text.contains("\"ops\":500"), "{text}");
        p.phase = "done";
        assert!(p.to_json(12).render().contains("\"phase\":\"done\""));
    }
}

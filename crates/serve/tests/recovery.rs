//! Crash-recovery end-to-end: a server bound to a journal directory must
//! reconstruct its job table from the write-ahead journal — settled jobs
//! keep their results, never-started jobs run on boot, and an interrupted
//! single run resumes from its checkpoint to the bit-identical result an
//! uninterrupted run would have produced.

use baryon_bench::spec::{RunSpec, CHECKPOINT_PREFIX};
use baryon_serve::client::{self, ClientResponse};
use baryon_serve::journal::{Journal, JournalEvent};
use baryon_serve::{ServeConfig, Server};
use baryon_sim::json::{parse, Json};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("baryon-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(journal_dir: &Path) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        port: 0,
        workers: 1,
        queue_depth: 8,
        journal_dir: Some(journal_dir.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral loopback port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || {
        server.run().expect("accept loop exits cleanly");
    });
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let r = client::request(addr, "POST", "/v1/shutdown", None).expect("shutdown reachable");
    assert_eq!(r.status, 200, "{}", r.body);
    handle.join().expect("server thread exits");
}

fn get_field<'a>(doc: &'a Json, key: &str) -> &'a Json {
    let Json::Obj(pairs) = doc else {
        panic!("expected an object, got {}", doc.render());
    };
    &pairs
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing field {key} in {}", doc.render()))
        .1
}

fn await_job(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let r = client::request(addr, "GET", &format!("/v1/jobs/{id}"), None)
            .expect("status reachable");
        assert_eq!(r.status, 200, "{}", r.body);
        let doc = parse(&r.body).expect("status is JSON");
        let Json::Str(state) = get_field(&doc, "state") else {
            panic!("state should be a string: {}", r.body);
        };
        match state.as_str() {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} stuck: {}", r.body);
                std::thread::sleep(Duration::from_millis(10));
            }
            _ => return doc,
        }
    }
}

fn quick_spec() -> RunSpec {
    RunSpec {
        workload: "ycsb-a".into(),
        controller: "simple".into(),
        insts: 3_000,
        warmup: 500,
        scale: 2048,
        seed: 5,
        mlp: 1,
        telemetry: false,
        threads: 1,
    }
}

fn submit(addr: SocketAddr, body: &str) -> ClientResponse {
    client::request(addr, "POST", "/v1/jobs", Some(body)).expect("submit reachable")
}

/// Settled jobs and their results survive a clean restart, and the ID
/// counter continues above the recovered jobs.
#[test]
fn finished_jobs_survive_restart() {
    let dir = temp_dir("finished");
    let spec_body = quick_spec().to_json().render();

    let (addr, handle) = boot(&dir);
    let accepted = submit(addr, &spec_body);
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let status = await_job(addr, 1);
    assert_eq!(get_field(&status, "state"), &Json::from("done"));
    let result = get_field(&status, "result").render();
    shutdown(addr, handle);

    // Second incarnation, same journal directory.
    let (addr, handle) = boot(&dir);
    let r = client::request(addr, "GET", "/v1/jobs/1", None).expect("status reachable");
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = parse(&r.body).expect("status is JSON");
    assert_eq!(get_field(&doc, "state"), &Json::from("done"));
    assert_eq!(
        get_field(&doc, "result").render(),
        result,
        "journaled result changed across restart"
    );
    // New submissions never collide with recovered IDs.
    let accepted = submit(addr, &spec_body);
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    assert!(accepted.body.contains("\"id\":2"), "{}", accepted.body);
    await_job(addr, 2);
    shutdown(addr, handle);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A job that was accepted but never started (the process died first)
/// runs to completion on the next boot, and an interrupted run resumes
/// from its checkpoint to the bit-identical uninterrupted result.
#[test]
fn unstarted_and_interrupted_jobs_recover() {
    let dir = temp_dir("interrupted");
    let spec = quick_spec();
    let golden = spec.execute().expect("golden run").to_json().render();

    // Fake the crashed incarnation's journal: job 1 was accepted and
    // never started; job 2 was mid-run with a checkpoint on disk.
    {
        let mut system = spec.build_system().expect("system");
        system.begin(spec.insts);
        assert!(!system.advance(800), "run too short to interrupt");
        spec.checkpoint_of(&system)
            .save_rotating(&dir.join("ckpt-2"), CHECKPOINT_PREFIX, 2)
            .expect("write checkpoint");
        let journal = Journal::open(&dir).expect("open journal");
        for event in [
            JournalEvent::Submit {
                id: 1,
                spec_json: spec.to_json().render(),
            },
            JournalEvent::Submit {
                id: 2,
                spec_json: spec.to_json().render(),
            },
            JournalEvent::Start { id: 2 },
        ] {
            journal.append(&event).expect("append");
        }
    }

    let (addr, handle) = boot(&dir);
    for id in [1, 2] {
        let status = await_job(addr, id);
        assert_eq!(
            get_field(&status, "state"),
            &Json::from("done"),
            "job {id}: {}",
            status.render()
        );
        assert_eq!(
            get_field(&status, "result").render(),
            golden,
            "job {id} diverged from the uninterrupted golden"
        );
    }
    // The metrics document reports the recovery.
    let r = client::request(addr, "GET", "/v1/metrics", None).expect("metrics reachable");
    assert!(r.body.contains("\"serve.jobs.recovered\":2"), "{}", r.body);
    // The resumed job's checkpoints were cleaned up on completion.
    assert!(!dir.join("ckpt-2").exists(), "checkpoints linger");
    shutdown(addr, handle);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

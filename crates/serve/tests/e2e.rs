//! End-to-end smoke tests: a real server on an ephemeral loopback port,
//! driven through the smoke-test client.
//!
//! The headline checks mirror the serving contract:
//! * a completed job's result document is byte-identical to the same run
//!   executed directly through the in-process spec path (determinism),
//! * a burst larger than the queue depth gets `503` backpressure without
//!   dropping any accepted job,
//! * lifecycle: status polling, cancellation of queued jobs, metrics.

use baryon_bench::spec::RunSpec;
use baryon_serve::client::{self, ClientResponse};
use baryon_serve::{ServeConfig, Server};
use baryon_sim::json::{parse, Json};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Boots a server and returns its address plus the join handle.
fn boot(workers: usize, queue_depth: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    boot_with_deadline(workers, queue_depth, None)
}

/// Boots a server with a per-job wall-clock deadline.
fn boot_with_deadline(
    workers: usize,
    queue_depth: usize,
    job_deadline: Option<Duration>,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig {
        port: 0,
        workers,
        queue_depth,
        job_deadline,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral loopback port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || {
        server.run().expect("accept loop exits cleanly");
    });
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let r = client::request(addr, "POST", "/v1/shutdown", None).expect("shutdown reachable");
    assert_eq!(r.status, 200, "{}", r.body);
    handle.join().expect("server thread exits");
}

fn get_field<'a>(doc: &'a Json, key: &str) -> &'a Json {
    let Json::Obj(pairs) = doc else {
        panic!("expected an object, got {}", doc.render());
    };
    &pairs
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing field {key} in {}", doc.render()))
        .1
}

fn submit(addr: SocketAddr, body: &str) -> ClientResponse {
    client::request(addr, "POST", "/v1/jobs", Some(body)).expect("submit reachable")
}

fn job_id(response: &ClientResponse) -> u64 {
    let doc = parse(&response.body).expect("submit response is JSON");
    match get_field(&doc, "id") {
        Json::U64(id) => *id,
        other => panic!("id should be an integer, got {}", other.render()),
    }
}

/// Polls a job until it leaves the queue/running states.
fn await_job(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let r = client::request(addr, "GET", &format!("/v1/jobs/{id}"), None)
            .expect("status reachable");
        assert_eq!(r.status, 200, "{}", r.body);
        let doc = parse(&r.body).expect("status is JSON");
        let Json::Str(state) = get_field(&doc, "state") else {
            panic!("state should be a string: {}", r.body);
        };
        match state.as_str() {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} stuck: {}", r.body);
                std::thread::sleep(Duration::from_millis(10));
            }
            _ => return doc,
        }
    }
}

/// A quick spec: small scaled-down run that still exercises the full
/// simulator (same path as `baryon-cli run`).
const QUICK_SPEC: &str = r#"{"workload":"ycsb-a","controller":"simple",
    "insts":3000,"warmup":500,"scale":1024,"seed":7}"#;

#[test]
fn served_result_is_byte_identical_to_direct_run() {
    let (addr, handle) = boot(2, 8);

    let accepted = submit(addr, QUICK_SPEC);
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let id = job_id(&accepted);

    let status = await_job(addr, id);
    assert_eq!(get_field(&status, "state"), &Json::from("done"));
    let served = get_field(&status, "result").render();

    // The same spec executed in-process must produce the same bytes.
    let spec = RunSpec {
        workload: "ycsb-a".into(),
        controller: "simple".into(),
        insts: 3000,
        warmup: 500,
        scale: 1024,
        seed: 7,
        mlp: 1,
        telemetry: false,
        threads: 1,
    };
    let direct = spec.execute().expect("spec runs").to_json().render();
    assert_eq!(served, direct, "served result diverged from direct run");

    // Wall time is reported once finished.
    match get_field(&status, "wall_us") {
        Json::U64(_) => {}
        other => panic!("wall_us should be an integer, got {}", other.render()),
    }

    shutdown(addr, handle);
}

#[test]
fn burst_beyond_queue_depth_gets_backpressure_without_losing_jobs() {
    let queue_depth = 2;
    let (addr, handle) = boot(1, queue_depth);

    // Occupy the single worker with a longer job, then burst.
    let slow = submit(
        addr,
        r#"{"workload":"ycsb-a","controller":"simple","insts":120000,"warmup":1000,"scale":1024}"#,
    );
    assert_eq!(slow.status, 202, "{}", slow.body);
    let mut accepted = vec![job_id(&slow)];
    let mut rejected = 0usize;
    for _ in 0..(queue_depth + 6) {
        let r = submit(addr, QUICK_SPEC);
        match r.status {
            202 => accepted.push(job_id(&r)),
            503 => {
                assert_eq!(r.header("retry-after"), Some("1"), "{}", r.body);
                rejected += 1;
            }
            other => panic!("unexpected status {other}: {}", r.body),
        }
    }
    assert!(
        rejected > 0,
        "burst of {} should overflow a queue of {queue_depth}",
        queue_depth + 6
    );

    // Every accepted job completes; none are dropped by the backpressure.
    for id in &accepted {
        let status = await_job(addr, *id);
        assert_eq!(
            get_field(&status, "state"),
            &Json::from("done"),
            "job {id}: {}",
            status.render()
        );
    }

    // Rejected submissions left no half-registered records behind.
    let submitted = accepted.len() + rejected;
    let r = client::request(addr, "GET", &format!("/v1/jobs/{submitted}"), None)
        .expect("status reachable");
    assert_eq!(r.status, 404, "rejected job should not exist: {}", r.body);

    let metrics = client::request(addr, "GET", "/v1/metrics", None).expect("metrics reachable");
    let doc = parse(&metrics.body).expect("metrics are JSON");
    let counters = get_field(&doc, "counters");
    assert_eq!(
        get_field(counters, "serve.jobs.rejected"),
        &Json::from(rejected as u64)
    );
    assert_eq!(
        get_field(counters, "serve.jobs.done"),
        &Json::from(accepted.len() as u64)
    );

    shutdown(addr, handle);
}

#[test]
fn queued_jobs_can_be_cancelled_and_never_run() {
    let (addr, handle) = boot(1, 4);

    // Worker busy on a long job, next job waits in the queue.
    let slow = submit(
        addr,
        r#"{"workload":"ycsb-a","controller":"simple","insts":120000,"warmup":1000,"scale":1024}"#,
    );
    assert_eq!(slow.status, 202);
    let queued = submit(addr, QUICK_SPEC);
    assert_eq!(queued.status, 202);
    let id = job_id(&queued);

    let r = client::request(addr, "POST", &format!("/v1/jobs/{id}/cancel"), None)
        .expect("cancel reachable");
    assert_eq!(r.status, 200, "{}", r.body);

    // The record stays cancelled even after the worker drains the queue.
    let slow_id = job_id(&slow);
    await_job(addr, slow_id);
    let status = await_job(addr, id);
    assert_eq!(get_field(&status, "state"), &Json::from("cancelled"));

    // Cancelling a finished job is a conflict; unknown jobs are 404.
    let r = client::request(addr, "POST", &format!("/v1/jobs/{slow_id}/cancel"), None)
        .expect("cancel reachable");
    assert_eq!(r.status, 409, "{}", r.body);
    let r = client::request(addr, "POST", "/v1/jobs/999/cancel", None).expect("reachable");
    assert_eq!(r.status, 404);

    shutdown(addr, handle);
}

#[test]
fn grid_jobs_return_row_major_results() {
    let (addr, handle) = boot(2, 4);

    let r = submit(
        addr,
        r#"{"grid":{"workloads":["ycsb-a"],"controllers":["simple","dice"],
             "insts":3000,"warmup":500,"scale":1024,"seed":7}}"#,
    );
    assert_eq!(r.status, 202, "{}", r.body);
    let status = await_job(addr, job_id(&r));
    assert_eq!(get_field(&status, "state"), &Json::from("done"));
    let Json::Arr(results) = get_field(get_field(&status, "result"), "results") else {
        panic!("grid result should hold an array: {}", status.render());
    };
    assert_eq!(results.len(), 2);
    assert_eq!(get_field(&results[0], "controller"), &Json::from("simple"));
    assert_eq!(get_field(&results[1], "controller"), &Json::from("dice"));
    for cell in results {
        assert_eq!(get_field(cell, "workload"), &Json::from("ycsb-a"));
    }

    shutdown(addr, handle);
}

#[test]
fn protocol_errors_are_typed() {
    let (addr, handle) = boot(1, 2);

    // Malformed JSON body → 400 with a parse position.
    let r = submit(addr, "{nope");
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("invalid JSON"), "{}", r.body);

    // Well-formed JSON, bad spec → 400 naming the field.
    let r = submit(addr, r#"{"workload":"not-a-workload"}"#);
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown workload"), "{}", r.body);

    // Unknown endpoint → 404; wrong method → 405.
    let r = client::request(addr, "GET", "/v1/nope", None).expect("reachable");
    assert_eq!(r.status, 404);
    let r = client::request(addr, "DELETE", "/v1/jobs", None).expect("reachable");
    assert_eq!(r.status, 405);
    let r = client::request(addr, "GET", "/v1/jobs/not-a-number", None).expect("reachable");
    assert_eq!(r.status, 404);

    // Health and metrics respond even on a fresh server.
    let r = client::request(addr, "GET", "/v1/healthz", None).expect("reachable");
    assert_eq!(r.status, 200);
    assert_eq!(r.body, r#"{"ok":true}"#);
    let r = client::request(addr, "GET", "/v1/metrics", None).expect("reachable");
    assert_eq!(r.status, 200);
    let doc = parse(&r.body).expect("metrics are JSON");
    assert_eq!(
        get_field(get_field(&doc, "counters"), "serve.workers.total"),
        &Json::from(1u64)
    );

    shutdown(addr, handle);
}

#[test]
fn deadline_exceeded_jobs_fail_and_the_worker_moves_on() {
    // One worker, 1 s budget per job: plenty for QUICK_SPEC even on a
    // host loaded with the rest of the test suite, hopeless for a
    // multi-million-instruction run in a debug build.
    let (addr, handle) = boot_with_deadline(1, 4, Some(Duration::from_millis(1000)));

    let stuck = submit(
        addr,
        r#"{"workload":"ycsb-a","controller":"simple","insts":5000000,"warmup":1000,"scale":1024}"#,
    );
    assert_eq!(stuck.status, 202, "{}", stuck.body);
    let quick = submit(addr, QUICK_SPEC);
    assert_eq!(quick.status, 202, "{}", quick.body);

    // The oversized job is failed by the watchdog, with a timeout reason.
    let status = await_job(addr, job_id(&stuck));
    assert_eq!(
        get_field(&status, "state"),
        &Json::from("failed"),
        "{}",
        status.render()
    );
    let Json::Str(error) = get_field(&status, "error") else {
        panic!("failed job should carry an error: {}", status.render());
    };
    assert!(error.contains("deadline exceeded"), "{error}");

    // The worker survived the timeout and completed the queued job.
    let status = await_job(addr, job_id(&quick));
    assert_eq!(
        get_field(&status, "state"),
        &Json::from("done"),
        "{}",
        status.render()
    );

    let metrics = client::request(addr, "GET", "/v1/metrics", None).expect("metrics reachable");
    let doc = parse(&metrics.body).expect("metrics are JSON");
    let counters = get_field(&doc, "counters");
    assert_eq!(
        get_field(counters, "serve.jobs.timed_out"),
        &Json::from(1u64)
    );
    assert_eq!(get_field(counters, "serve.jobs.failed"), &Json::from(1u64));
    assert_eq!(get_field(counters, "serve.jobs.done"), &Json::from(1u64));
    assert_eq!(
        get_field(counters, "serve.jobs.panicked"),
        &Json::from(0u64)
    );

    shutdown(addr, handle);
}

#[test]
fn typed_client_distinguishes_connect_from_timeout_against_a_live_server() {
    let (addr, handle) = boot(1, 2);

    // A tight read timeout against a healthy endpoint still succeeds.
    let client = baryon_serve::client::Client::new(addr)
        .connect_timeout(Duration::from_secs(5))
        .read_timeout(Duration::from_secs(5))
        .retries(3)
        .backoff_base(Duration::from_millis(5));
    let r = client
        .request_with_retry("GET", "/v1/healthz", None)
        .expect("healthy server answers");
    assert_eq!(r.status, 200);

    shutdown(addr, handle);

    // With the listener gone, the failure is typed as a connect error.
    let err = client
        .request("GET", "/v1/healthz", None)
        .expect_err("server is gone");
    assert!(
        matches!(err, baryon_serve::client::ClientError::Connect(_)),
        "{err}"
    );
}

#[test]
fn submissions_after_shutdown_are_refused() {
    let (addr, handle) = boot(1, 2);
    let accepted = submit(addr, QUICK_SPEC);
    assert_eq!(accepted.status, 202);
    let id = job_id(&accepted);

    let r = client::request(addr, "POST", "/v1/shutdown", None).expect("reachable");
    assert_eq!(r.status, 200);
    handle.join().expect("drained");

    // The accepted job was drained to completion before exit, visible in
    // the in-process table had we kept the server; over the wire the
    // listener is gone, so any further submission fails to connect.
    assert!(client::request(addr, "POST", "/v1/jobs", Some(QUICK_SPEC)).is_err());
    let _ = id;
}

#[test]
fn events_stream_delivers_monotonic_progress_then_end() {
    let (addr, handle) = boot(1, 4);
    // Long enough to cross several observation intervals (the default
    // cadence is 20k trace operations between progress publishes).
    let spec = r#"{"workload":"ycsb-a","controller":"simple",
        "insts":150000,"warmup":10000,"scale":1024,"seed":7}"#;
    let accepted = submit(addr, spec);
    assert_eq!(accepted.status, 202);
    let id = job_id(&accepted);

    let mut lines = Vec::new();
    baryon_serve::client::Client::new(addr)
        .stream(&format!("/v1/jobs/{id}/events"), &mut |line| {
            lines.push(line.to_owned())
        })
        .expect("stream runs to completion");
    assert!(!lines.is_empty(), "stream delivered nothing");

    let mut last_ops = 0u64;
    let mut progress_events = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let doc = parse(line).expect("event line is JSON");
        let Json::Str(event) = get_field(&doc, "event") else {
            panic!("event should be a string: {line}");
        };
        match event.as_str() {
            "progress" => {
                progress_events += 1;
                let Json::U64(ops) = get_field(&doc, "ops") else {
                    panic!("ops should be an integer: {line}");
                };
                assert!(
                    *ops > last_ops,
                    "progress must be strictly monotonic: {ops} after {last_ops}"
                );
                last_ops = *ops;
            }
            "end" => {
                assert_eq!(i, lines.len() - 1, "end must be the final event");
                let Json::Str(state) = get_field(&doc, "state") else {
                    panic!("state should be a string: {line}");
                };
                assert_eq!(state, "done", "{line}");
            }
            "alive" => {}
            other => panic!("unknown event {other}: {line}"),
        }
    }
    assert!(progress_events >= 1, "no progress events in {lines:?}");
    assert!(
        lines
            .last()
            .expect("nonempty")
            .contains("\"event\":\"end\""),
        "stream must settle with an end event: {lines:?}"
    );

    // Streaming observed the run without perturbing it: the result still
    // matches the direct in-process execution byte for byte.
    let status = await_job(addr, id);
    let direct = {
        let doc = parse(spec).expect("spec is JSON");
        let run = RunSpec::from_json(&doc).expect("valid spec");
        run.execute().expect("runs").to_json().render()
    };
    assert_eq!(get_field(&status, "result").render(), direct);
    shutdown(addr, handle);
}

#[test]
fn events_stream_for_unknown_job_is_a_typed_404() {
    let (addr, handle) = boot(1, 2);
    let err = baryon_serve::client::Client::new(addr)
        .stream("/v1/jobs/424242/events", &mut |_| {})
        .expect_err("no such job");
    assert_eq!(err.code(), Some(baryon_serve::ErrorCode::NotFound), "{err}");
    shutdown(addr, handle);
}

#[test]
fn wire_metrics_reconstruct_the_registry_exactly() {
    let (addr, handle) = boot(1, 2);
    let accepted = submit(addr, QUICK_SPEC);
    assert_eq!(accepted.status, 202);
    await_job(addr, job_id(&accepted));

    let wire_doc = client::request(addr, "GET", "/v1/metrics?format=wire", None)
        .expect("wire metrics reachable");
    assert_eq!(wire_doc.status, 200, "{}", wire_doc.body);
    let doc = parse(&wire_doc.body).expect("wire envelope is JSON");
    let Json::Str(hex) = get_field(&doc, "wire") else {
        panic!("wire should be a hex string: {}", wire_doc.body);
    };
    let bytes = baryon_sim::wire::from_hex(hex).expect("valid hex");
    let mut reader = baryon_sim::wire::Reader::new(&bytes);
    let reg = baryon_sim::telemetry::Registry::load_state(&mut reader).expect("registry decodes");
    assert_eq!(reg.counter("serve.jobs.done"), 1);
    assert_eq!(reg.counter("serve.jobs.submitted"), 1);
    assert!(
        reg.summary("serve.job_latency_us").is_some(),
        "histograms survive the wire form"
    );
    shutdown(addr, handle);
}

#![warn(missing_docs)]

//! CPU-side cache models for the Baryon reproduction.
//!
//! The paper simulates a 16-core x86 machine (Table I) whose cache hierarchy
//! filters the memory reference stream before it reaches the hybrid memory
//! controller:
//!
//! * L1D: 8-way, 64 kB per core,
//! * L2: 8-way, 1 MB per core, 9-cycle latency,
//! * LLC: 16-way, 16 MB shared, 38-cycle latency,
//! * 64 B cachelines, LRU everywhere.
//!
//! [`SetAssocCache`] is the single-level building block; [`Hierarchy`] wires
//! per-core L1D + L2 and a shared LLC together and reports, for each access,
//! where it hit and which dirty line (if any) must be written back to memory.
//!
//! The workloads in this reproduction are data traces, so the L1I from
//! Table I exists only as configuration (instruction fetch is not simulated);
//! this matches how trace-driven evaluations of memory-system papers use it.
//!
//! # Examples
//!
//! ```
//! use baryon_cache::{CacheConfig, SetAssocCache};
//!
//! let mut cache = SetAssocCache::new(CacheConfig::new(64, 4, 64, 1));
//! assert!(!cache.access(0x1000, false).hit);
//! assert!(cache.access(0x1000, false).hit);
//! ```

pub mod hierarchy;
pub mod setassoc;

pub use hierarchy::{Hierarchy, HierarchyConfig, HitLevel, PrivateAccess};
pub use setassoc::{AccessResult, CacheConfig, Eviction, SetAssocCache};

//! A generic set-associative, write-back, write-allocate cache with LRU.

use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Hit latency in CPU cycles.
    pub latency: Cycle,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` and `line_bytes` are powers of two and `ways > 0`.
    pub fn new(sets: usize, ways: usize, line_bytes: u64, latency: Cycle) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways > 0, "need at least one way");
        CacheConfig {
            sets,
            ways,
            line_bytes,
            latency,
        }
    }

    /// Builds a configuration from a total capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into a power-of-two set count.
    pub fn with_capacity(bytes: u64, ways: usize, line_bytes: u64, latency: Cycle) -> Self {
        let sets = (bytes / line_bytes / ways as u64) as usize;
        Self::new(sets, ways, line_bytes, latency)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Base address of the evicted line.
    pub addr: u64,
    /// True if the line was dirty and must be written back.
    pub dirty: bool,
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// True if the line was present.
    pub hit: bool,
    /// A line displaced by the fill on a miss (write-allocate).
    pub eviction: Option<Eviction>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// Hit/miss statistics of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read hits.
    pub read_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses.
    pub write_misses: u64,
}

impl CacheStats {
    /// All accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// All misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Miss ratio in `[0, 1]`; 0 if no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Publishes into the unified telemetry [`Registry`].
    pub fn export(&self, reg: &mut Registry) {
        reg.set_counter("read_hits", self.read_hits);
        reg.set_counter("read_misses", self.read_misses);
        reg.set_counter("write_hits", self.write_hits);
        reg.set_counter("write_misses", self.write_misses);
    }
}

/// A set-associative LRU cache tracking tags, valid and dirty bits.
///
/// The cache is write-back and write-allocate: a write miss fills the line
/// and marks it dirty; evicted dirty lines are reported to the caller.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        SetAssocCache {
            lines: vec![Line::default(); cfg.sets * cfg.ways],
            cfg,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics without flushing contents (post-warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes) as usize) & (self.cfg.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes / self.cfg.sets as u64
    }

    fn line_base(&self, set: usize, tag: u64) -> u64 {
        (tag * self.cfg.sets as u64 + set as u64) * self.cfg.line_bytes
    }

    /// Accesses `addr`; on a miss the line is filled (write-allocate),
    /// possibly evicting the set's LRU line.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        let result = self.access_quiet(addr, is_write);
        self.count_access(result.hit, is_write);
        result
    }

    /// The state-mutating half of [`SetAssocCache::access`]: identical tag,
    /// LRU, dirty-bit and fill behaviour, but no statistics. Used by the
    /// deterministic parallel run mode, where private caches are simulated
    /// ahead of time by worker threads and the hit/miss *counts* are
    /// replayed in merge order via [`SetAssocCache::count_access`] (so the
    /// warm-up statistics reset falls at the same point it would serially).
    pub fn access_quiet(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = self.tick;
            line.dirty |= is_write;
            return AccessResult {
                hit: true,
                eviction: None,
            };
        }

        let eviction = self.fill_at(set, tag, is_write);
        AccessResult {
            hit: false,
            eviction,
        }
    }

    /// Counts one access outcome into the statistics — the counting half
    /// of [`SetAssocCache::access`].
    pub fn count_access(&mut self, hit: bool, is_write: bool) {
        match (hit, is_write) {
            (true, true) => self.stats.write_hits += 1,
            (true, false) => self.stats.read_hits += 1,
            (false, true) => self.stats.write_misses += 1,
            (false, false) => self.stats.read_misses += 1,
        }
    }

    /// Returns true if `addr`'s line is present (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        self.lines[base..base + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Installs a line without counting an access (used for prefetch fills).
    /// Returns the displaced line, if any. Already-present lines are only
    /// LRU-refreshed.
    pub fn install(&mut self, addr: u64) -> Option<Eviction> {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        if let Some(line) = self.lines[base..base + self.cfg.ways]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.stamp = self.tick;
            return None;
        }
        self.fill_at(set, tag, false)
    }

    /// Installs a line already marked dirty — a write-back arriving from the
    /// level above — without counting an access. If the line is present it is
    /// refreshed and marked dirty. Returns the displaced line, if any.
    pub fn install_dirty(&mut self, addr: u64) -> Option<Eviction> {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        if let Some(line) = self.lines[base..base + self.cfg.ways]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.stamp = self.tick;
            line.dirty = true;
            return None;
        }
        self.fill_at(set, tag, true)
    }

    /// Removes `addr`'s line if present, returning it (with its dirty bit).
    pub fn invalidate(&mut self, addr: u64) -> Option<Eviction> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.cfg.ways;
        let line_addr = self.line_base(set, tag);
        self.lines[base..base + self.cfg.ways]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| {
                l.valid = false;
                Eviction {
                    addr: line_addr,
                    dirty: l.dirty,
                }
            })
    }

    /// Serializes the mutable cache state (lines, LRU tick, statistics);
    /// the geometry is carried by the caller's configuration and rebuilt
    /// through [`SetAssocCache::new`] on restore.
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.lines.len());
        for l in &self.lines {
            w.u64(l.tag);
            w.bool(l.valid);
            w.bool(l.dirty);
            w.u64(l.stamp);
        }
        w.u64(self.tick);
        w.u64(self.stats.read_hits);
        w.u64(self.stats.read_misses);
        w.u64(self.stats.write_hits);
        w.u64(self.stats.write_misses);
    }

    /// Overlays checkpointed state onto this (freshly constructed) cache.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or a line count that
    /// does not match this cache's geometry.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.lines.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for l in &mut self.lines {
            l.tag = r.u64()?;
            l.valid = r.bool()?;
            l.dirty = r.bool()?;
            l.stamp = r.u64()?;
        }
        self.tick = r.u64()?;
        self.stats.read_hits = r.u64()?;
        self.stats.read_misses = r.u64()?;
        self.stats.write_hits = r.u64()?;
        self.stats.write_misses = r.u64()?;
        Ok(())
    }

    fn fill_at(&mut self, set: usize, tag: u64, dirty: bool) -> Option<Eviction> {
        let base = set * self.cfg.ways;
        let victim_idx = {
            let ways = &self.lines[base..base + self.cfg.ways];
            match ways.iter().position(|l| !l.valid) {
                Some(i) => i,
                None => ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .expect("ways > 0"),
            }
        };
        let victim_addr = self.line_base(set, self.lines[base + victim_idx].tag);
        let line = &mut self.lines[base + victim_idx];
        let eviction = if line.valid {
            Some(Eviction {
                addr: victim_addr,
                dirty: line.dirty,
            })
        } else {
            None
        };
        *line = Line {
            tag,
            valid: true,
            dirty,
            stamp: self.tick,
        };
        eviction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        SetAssocCache::new(CacheConfig::new(2, 2, 64, 1))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same line");
        assert!(!c.access(128, false).hit, "other set");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines 0 and 256 (tags 0 and 1, set bit from addr/64 % 2).
        c.access(0, false); // A
        c.access(256, false); // B
        c.access(0, false); // touch A -> B is LRU
        let r = c.access(512, false); // C evicts B
        let ev = r.eviction.expect("full set must evict");
        assert_eq!(ev.addr, 256);
        assert!(c.probe(0));
        assert!(!c.probe(256));
    }

    #[test]
    fn dirty_bit_tracked_through_eviction() {
        let mut c = tiny();
        c.access(0, true);
        c.access(256, false);
        c.access(512, false); // evicts LRU = line 0, dirty
        let ev = c.access(768, false).eviction.expect("evict");
        // line 256 was LRU after 0 was evicted
        assert!(!ev.dirty);
        // Re-check: find the dirty eviction.
        let mut c = tiny();
        c.access(0, true);
        c.access(256, false);
        let ev = c.access(512, false).eviction.expect("evict");
        assert_eq!(ev.addr, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn write_allocate_marks_dirty() {
        let mut c = tiny();
        c.access(0, true);
        let ev = c.invalidate(0).expect("present");
        assert!(ev.dirty);
    }

    #[test]
    fn read_then_write_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true);
        assert!(c.invalidate(0).expect("present").dirty);
    }

    #[test]
    fn install_does_not_count_stats() {
        let mut c = tiny();
        c.install(0);
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.probe(0));
    }

    #[test]
    fn install_refreshes_lru() {
        let mut c = tiny();
        c.access(0, false);
        c.access(256, false);
        c.install(0); // 0 becomes MRU
        let ev = c.access(512, false).eviction.expect("evict");
        assert_eq!(ev.addr, 256);
    }

    #[test]
    fn invalidate_missing_is_none() {
        let mut c = tiny();
        assert!(c.invalidate(0).is_none());
    }

    #[test]
    fn stats_accumulate() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(0, true);
        c.access(4096, true);
        let s = c.stats();
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.write_hits, 1);
        assert_eq!(s.write_misses, 1);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_constructor() {
        // Table I LLC: 16 MB, 16-way, 64 B lines -> 16384 sets.
        let cfg = CacheConfig::with_capacity(16 << 20, 16, 64, 38);
        assert_eq!(cfg.sets, 16384);
        assert_eq!(cfg.capacity(), 16 << 20);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        CacheConfig::new(3, 2, 64, 1);
    }

    #[test]
    fn line_base_roundtrip() {
        let c = SetAssocCache::new(CacheConfig::new(16, 4, 64, 1));
        for addr in [0u64, 64, 4096, 123 * 64, 999 * 64] {
            let set = c.set_of(addr);
            let tag = c.tag_of(addr);
            assert_eq!(c.line_base(set, tag), addr & !63);
        }
    }
}

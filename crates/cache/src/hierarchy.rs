//! The three-level cache hierarchy of the simulated 16-core machine.

use crate::setassoc::{CacheConfig, SetAssocCache};
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;

/// Hierarchy geometry; defaults follow Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (= number of private L1D/L2 pairs).
    pub cores: usize,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
}

impl HierarchyConfig {
    /// The paper's 16-core configuration (Table I): 64 kB 8-way L1D,
    /// 1 MB 8-way L2 (9 cycles), 16 MB 16-way shared LLC (38 cycles).
    pub fn table1() -> Self {
        HierarchyConfig {
            cores: 16,
            l1d: CacheConfig::with_capacity(64 << 10, 8, 64, 4),
            l2: CacheConfig::with_capacity(1 << 20, 8, 64, 9),
            llc: CacheConfig::with_capacity(16 << 20, 16, 64, 38),
        }
    }

    /// A proportionally scaled-down configuration for fast experiments:
    /// capacities divided by `factor`, with set counts rounded to the nearest
    /// power of two and floored at 4 sets per cache (latencies and line size
    /// are architectural and kept unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is 0.
    pub fn table1_scaled(factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        let scaled = |bytes: u64, ways: usize, latency| {
            let sets = (bytes / factor / 64 / ways as u64).max(4);
            let sets = if sets.is_power_of_two() {
                sets
            } else {
                sets.next_power_of_two() / 2
            };
            CacheConfig::new(sets as usize, ways, 64, latency)
        };
        HierarchyConfig {
            cores: 16,
            l1d: scaled(64 << 10, 8, 4),
            l2: scaled(1 << 20, 8, 9),
            llc: scaled(16 << 20, 16, 38),
        }
    }
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Private L1 data cache.
    L1,
    /// Private L2.
    L2,
    /// Shared LLC.
    Llc,
    /// Missed the entire hierarchy; memory must be accessed.
    Memory,
}

/// Result of sending one reference through the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierAccess {
    /// Deepest level that had to be consulted.
    pub level: HitLevel,
    /// On-chip latency accumulated before memory is reached (or total
    /// latency for on-chip hits).
    pub latency: Cycle,
    /// Dirty 64 B lines evicted from the LLC that must be written to memory.
    pub writebacks: Vec<u64>,
}

/// The core-private outcome of one reference: everything
/// [`Hierarchy::access`] decides by touching only `core`'s L1D and L2.
///
/// This is the hand-off record of the deterministic parallel run mode:
/// worker threads drive disjoint cores' private caches ahead of time with
/// [`Hierarchy::access_private`], and the single merge thread later
/// replays the shared part (LLC state, statistics) in the canonical core
/// interleaving with [`Hierarchy::access_shared`]. Composing the two is
/// exactly [`Hierarchy::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivateAccess {
    /// The reference hit in L1D.
    pub l1_hit: bool,
    /// The reference hit in L2 (only meaningful when `!l1_hit`).
    pub l2_hit: bool,
    /// Dirty line pushed from L2 toward the LLC while installing the L1
    /// victim (before the L2 demand lookup).
    pub to_llc_victim: Option<u64>,
    /// Dirty line pushed from L2 toward the LLC by the demand fill
    /// (only possible when the reference missed L2).
    pub to_llc_demand: Option<u64>,
}

/// Per-core L1D and L2 plus a shared LLC.
///
/// Inclusion is not enforced (mostly-exclusive like modern parts); dirty
/// evictions trickle down one level and only LLC evictions reach memory.
///
/// # Examples
///
/// ```
/// use baryon_cache::{Hierarchy, HierarchyConfig};
///
/// let mut h = Hierarchy::new(HierarchyConfig::table1_scaled(256));
/// let first = h.access(0, 0x4000, false);
/// assert_eq!(first.level, baryon_cache::HitLevel::Memory);
/// let second = h.access(0, 0x4000, false);
/// assert_eq!(second.level, baryon_cache::HitLevel::L1);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1d: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
}

impl Hierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cfg: HierarchyConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        Hierarchy {
            l1d: (0..cfg.cores)
                .map(|_| SetAssocCache::new(cfg.l1d))
                .collect(),
            l2: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l2)).collect(),
            llc: SetAssocCache::new(cfg.llc),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Sends one data reference from `core` through the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `core >= cores`.
    pub fn access(&mut self, core: usize, addr: u64, is_write: bool) -> HierAccess {
        let private = self.access_private(core, addr, is_write);
        self.access_shared(addr, is_write, &private)
    }

    /// The core-private half of [`Hierarchy::access`]: runs the reference
    /// through `core`'s L1D and L2 (contents and LRU mutate; statistics do
    /// not) and records what the shared half needs. Touches no shared
    /// state, so disjoint cores may run this concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `core >= cores`.
    pub fn access_private(&mut self, core: usize, addr: u64, is_write: bool) -> PrivateAccess {
        assert!(core < self.cfg.cores, "core {core} out of range");
        private_access(&mut self.l1d[core], &mut self.l2[core], addr, is_write)
    }

    /// The shared half of [`Hierarchy::access`]: counts the private
    /// hit/miss outcomes into `core`-independent statistics totals, applies
    /// the recorded dirty spills to the LLC in their original order, and
    /// performs the LLC demand lookup. Must run in the canonical core
    /// interleaving — it mutates the shared LLC.
    ///
    /// The statistics counted here are the private levels' as well: the
    /// parallel run mode defers them to the merge thread so the
    /// measurement-boundary reset observes the same counts as a serial
    /// run (worker threads may already have simulated past the boundary).
    pub fn access_shared(
        &mut self,
        addr: u64,
        is_write: bool,
        private: &PrivateAccess,
    ) -> HierAccess {
        // `access_private` pairs each quiet L1 access with this count; the
        // core does not matter because private statistics are summed.
        self.l1d[0].count_access(private.l1_hit, is_write);
        let mut latency = self.cfg.l1d.latency;
        let mut writebacks = Vec::new();
        if private.l1_hit {
            return HierAccess {
                level: HitLevel::L1,
                latency,
                writebacks,
            };
        }
        if let Some(victim) = private.to_llc_victim {
            if let Some(llcev) = self.llc.install_dirty(victim) {
                if llcev.dirty {
                    writebacks.push(llcev.addr);
                }
            }
        }

        latency += self.cfg.l2.latency;
        self.l2[0].count_access(private.l2_hit, false);
        if private.l2_hit {
            return HierAccess {
                level: HitLevel::L2,
                latency,
                writebacks,
            };
        }
        if let Some(demand) = private.to_llc_demand {
            if let Some(llcev) = self.llc.install_dirty(demand) {
                if llcev.dirty {
                    writebacks.push(llcev.addr);
                }
            }
        }

        latency += self.cfg.llc.latency;
        let llc = self.llc.access(addr, false);
        if let Some(ev) = llc.eviction.filter(|e| e.dirty) {
            writebacks.push(ev.addr);
        }
        if llc.hit {
            return HierAccess {
                level: HitLevel::Llc,
                latency,
                writebacks,
            };
        }

        HierAccess {
            level: HitLevel::Memory,
            latency,
            writebacks,
        }
    }

    /// Mutable access to each core's private `(L1D, L2)` pair, in core
    /// order — the per-core shards the parallel run mode hands to worker
    /// threads (disjoint cores, disjoint caches).
    pub fn private_shards(
        &mut self,
    ) -> impl Iterator<Item = (&mut SetAssocCache, &mut SetAssocCache)> {
        self.l1d.iter_mut().zip(self.l2.iter_mut())
    }
}

/// [`Hierarchy::access_private`] over one detached `(L1D, L2)` pair — the
/// form worker threads use after [`Hierarchy::private_shards`] has split
/// the hierarchy into disjoint per-core borrows.
pub fn private_access(
    l1: &mut SetAssocCache,
    l2: &mut SetAssocCache,
    addr: u64,
    is_write: bool,
) -> PrivateAccess {
    let mut private = PrivateAccess {
        l1_hit: false,
        l2_hit: false,
        to_llc_victim: None,
        to_llc_demand: None,
    };
    let first = l1.access_quiet(addr, is_write);
    if first.hit {
        private.l1_hit = true;
        return private;
    }
    // L1 dirty victim goes to L2.
    if let Some(ev) = first.eviction.filter(|e| e.dirty) {
        if let Some(l2ev) = l2.install_dirty(ev.addr) {
            if l2ev.dirty {
                private.to_llc_victim = Some(l2ev.addr);
            }
        }
    }
    let second = l2.access_quiet(addr, false);
    if second.hit {
        private.l2_hit = true;
        return private;
    }
    if let Some(ev) = second.eviction.filter(|e| e.dirty) {
        private.to_llc_demand = Some(ev.addr);
    }
    private
}

impl Hierarchy {
    /// Installs extra decompressed 64 B lines into the LLC (Baryon's
    /// bandwidth-free memory-to-LLC prefetch, §III-E). Returns dirty lines
    /// displaced to memory.
    pub fn install_llc_lines(&mut self, addrs: &[u64]) -> Vec<u64> {
        let mut writebacks = Vec::new();
        for addr in addrs {
            if let Some(ev) = self.llc.install(*addr) {
                if ev.dirty {
                    writebacks.push(ev.addr);
                }
            }
        }
        writebacks
    }

    /// True if the LLC currently holds the line of `addr`.
    pub fn llc_has(&self, addr: u64) -> bool {
        self.llc.probe(addr)
    }

    /// Resets all hit/miss statistics (post-warm-up) but keeps contents.
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1d {
            c.reset_stats();
        }
        for c in &mut self.l2 {
            c.reset_stats();
        }
        self.llc.reset_stats();
    }

    /// Serializes every cache's mutable state (the geometry is rebuilt from
    /// the restored configuration).
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.l1d.len());
        for c in &self.l1d {
            c.save_state(w);
        }
        w.seq(self.l2.len());
        for c in &self.l2 {
            c.save_state(w);
        }
        self.llc.save_state(w);
    }

    /// Overlays checkpointed state onto this (freshly constructed)
    /// hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or a geometry mismatch.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.l1d.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for c in &mut self.l1d {
            c.load_state(r)?;
        }
        let n = r.seq()?;
        if n != self.l2.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for c in &mut self.l2 {
            c.load_state(r)?;
        }
        self.llc.load_state(r)
    }

    /// Publishes per-level statistics under `cache.<level>.<metric>`;
    /// private levels are summed across cores.
    pub fn export(&self, reg: &mut Registry) {
        let mut agg = |name: &str, caches: &[SetAssocCache]| {
            let mut level = Registry::new();
            for c in caches {
                let mut s = Registry::new();
                c.stats().export(&mut s);
                level.merge(&s);
            }
            reg.absorb(name, &level);
        };
        agg("cache.l1d", &self.l1d);
        agg("cache.l2", &self.l2);
        let mut llc = Registry::new();
        self.llc.stats().export(&mut llc);
        reg.absorb("cache.llc", &llc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            cores: 2,
            l1d: CacheConfig::new(4, 2, 64, 4),
            l2: CacheConfig::new(8, 2, 64, 9),
            llc: CacheConfig::new(16, 4, 64, 38),
        })
    }

    #[test]
    fn miss_then_l1_hit() {
        let mut h = small();
        assert_eq!(h.access(0, 0, false).level, HitLevel::Memory);
        assert_eq!(h.access(0, 0, false).level, HitLevel::L1);
    }

    #[test]
    fn latencies_accumulate() {
        let mut h = small();
        let miss = h.access(0, 0, false);
        assert_eq!(miss.latency, 4 + 9 + 38);
        let hit = h.access(0, 0, false);
        assert_eq!(hit.latency, 4);
    }

    #[test]
    fn private_caches_are_private() {
        let mut h = small();
        h.access(0, 0, false);
        // Core 1 misses its private levels but hits the shared LLC.
        assert_eq!(h.access(1, 0, false).level, HitLevel::Llc);
    }

    #[test]
    fn llc_prefetch_install_visible() {
        let mut h = small();
        h.install_llc_lines(&[0, 64, 128]);
        assert!(h.llc_has(0) && h.llc_has(64) && h.llc_has(128));
        assert_eq!(h.access(0, 64, false).level, HitLevel::Llc);
    }

    #[test]
    fn dirty_data_eventually_written_back() {
        let mut h = small();
        // Write a line, then stream enough lines through to push it out of
        // all three levels; some access must report it as a writeback.
        h.access(0, 0, true);
        let mut seen = false;
        for i in 1..2000u64 {
            let r = h.access(0, i * 64, false);
            if r.writebacks.contains(&0) {
                seen = true;
                break;
            }
        }
        assert!(seen, "dirty line never surfaced as an LLC writeback");
    }

    #[test]
    fn clean_evictions_produce_no_writebacks() {
        let mut h = small();
        for i in 0..2000u64 {
            let r = h.access(0, i * 64, false);
            assert!(r.writebacks.is_empty(), "clean data wrote back at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        small().access(7, 0, false);
    }

    #[test]
    fn export_has_all_levels() {
        let mut h = small();
        h.access(0, 0, false);
        let mut s = Registry::new();
        h.export(&mut s);
        assert_eq!(s.counter("cache.l1d.read_misses"), 1);
        assert_eq!(s.counter("cache.l2.read_misses"), 1);
        assert_eq!(s.counter("cache.llc.read_misses"), 1);
    }

    #[test]
    fn table1_capacities() {
        let t = HierarchyConfig::table1();
        assert_eq!(t.l1d.capacity(), 64 << 10);
        assert_eq!(t.l2.capacity(), 1 << 20);
        assert_eq!(t.llc.capacity(), 16 << 20);
        assert_eq!(t.cores, 16);
    }
}

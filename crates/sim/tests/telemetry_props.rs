//! Property tests for the unified telemetry registry: the JSON document
//! produced by [`Registry::to_json`] must reconstruct the exact snapshot
//! after a full render → parse round-trip, for arbitrary registries.

use baryon_sim::check;
use baryon_sim::json;
use baryon_sim::telemetry::Registry;

/// A dotted metric name from a fixed pool of components and fields, with a
/// per-kind suffix so counters, gauges and summaries never share a name
/// (as in the real workspace, where the kind is part of the convention).
fn name(g: &mut check::Gen, kind: &str) -> String {
    let comp = ["ctrl", "cache.l2", "sim", "serve", "mem"][g.choice(5)];
    let field = ["reads", "hits", "bytes", "lat", "span.fill"][g.choice(5)];
    format!("{comp}.{field}.{kind}")
}

#[test]
fn snapshot_round_trips_through_rendered_json() {
    check::props("telemetry_snapshot_json_round_trip").run(|g| {
        let mut reg = Registry::new();
        // Magnitudes are bounded (2^48) so repeated adds to one name and
        // histogram sums cannot overflow — as in real use, where counters
        // are event counts, not arbitrary bit patterns.
        for _ in 0..g.range(0, 6) {
            let n = name(g, "c");
            reg.add(&n, g.range(0, 1 << 48));
        }
        for _ in 0..g.range(0, 6) {
            let n = name(g, "g");
            // Finite gauges only: JSON has no NaN/Infinity (the emitter
            // renders them as null, which reads back as NaN and would
            // defeat the equality below since NaN != NaN). Whole-valued
            // gauges are the interesting case — they render without a
            // fraction and parse back as integers.
            let v = if g.bool() {
                g.range(0, 1000) as f64
            } else {
                g.f64() * 1e6
            };
            reg.set_gauge(&n, if g.bool() { -v } else { v });
        }
        for _ in 0..g.range(0, 4) {
            let n = name(g, "s");
            for _ in 0..g.range(1, 8) {
                reg.observe(&n, g.range(0, 1 << 48));
            }
        }
        let text = reg.to_json().render();
        let doc = json::parse(&text).expect("registry JSON parses");
        assert_eq!(Registry::snapshot_from_json(&doc), Some(reg.snapshot()));
    });
}

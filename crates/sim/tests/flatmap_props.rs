//! Model-based property tests for [`baryon_sim::flatmap::OpenMap`]: a
//! random operation sequence is applied to both the open-addressed map
//! and `std::collections::HashMap`, and every return value plus the
//! final contents must agree. Keys are drawn from a deliberately small
//! universe so probe chains collide, removals leave tombstones that
//! later inserts must reuse, and long sequences cross several resize
//! boundaries.

use baryon_sim::check::props;
use baryon_sim::flatmap::OpenMap;
use std::collections::HashMap;

#[test]
fn openmap_matches_hashmap_model() {
    props("openmap_vs_hashmap").cases(64).run(|g| {
        let mut map: OpenMap<u64> = OpenMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let key_bits = g.usize_range(3, 8); // 8..=256 distinct keys
        let ops = g.usize_range(50, 2_000);
        g.note(format!("{ops} ops over {} keys", 1u64 << key_bits));
        for _ in 0..ops {
            let key = g.u64() & ((1 << key_bits) - 1);
            match g.choice(6) {
                // Insert dominates so the map actually grows.
                0 | 1 => {
                    let v = g.u64();
                    assert_eq!(map.insert(key, v), model.insert(key, v), "insert {key}");
                }
                2 => assert_eq!(map.remove(key), model.remove(&key), "remove {key}"),
                3 => assert_eq!(map.get(key).copied(), model.get(&key).copied(), "get {key}"),
                4 => {
                    let v = map.entry_or_default(key);
                    let mv = model.entry(key).or_default();
                    assert_eq!(*v, *mv, "entry_or_default {key}");
                    *v += 1;
                    *mv += 1;
                }
                _ => {
                    if let Some(v) = map.get_mut(key) {
                        *v ^= 0x9e37;
                    }
                    if let Some(mv) = model.get_mut(&key) {
                        *mv ^= 0x9e37;
                    }
                    assert_eq!(map.get_copied(key), model.get(&key).copied());
                }
            }
            assert_eq!(map.len(), model.len());
        }
        let mut got: Vec<(u64, u64)> = map.iter().map(|(k, v)| (k, *v)).collect();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        want.sort_unstable();
        assert_eq!(got, want, "final contents diverged");
    });
}

#[test]
fn openmap_survives_tombstone_churn() {
    // Insert/remove the same small key set far more times than the table
    // has slots: if tombstones were never reused or miscounted, the table
    // would either grow without bound or lose entries.
    props("openmap_tombstone_churn").cases(16).run(|g| {
        let mut map: OpenMap<u64> = OpenMap::new();
        let keys: Vec<u64> = (0..g.u64() % 12 + 4).collect();
        for round in 0..500u64 {
            for &k in &keys {
                assert!(map.insert(k, round).is_none());
            }
            for &k in &keys {
                assert_eq!(map.remove(k), Some(round));
            }
        }
        assert!(map.is_empty());
        assert_eq!(map.iter().count(), 0);
    });
}

//! Property tests for [`Registry::absorb`] — the namespacing merge a
//! fleet coordinator uses to fold every worker shard's registry into one
//! `/v1/metrics` document under `shard<i>.` prefixes.
//!
//! Three contracts, for arbitrary shard registries:
//!
//! * **Order-independence** — absorbing K shard snapshots under distinct
//!   prefixes yields the same merged snapshot in any absorption order.
//! * **Collision-freedom** — every merged metric maps back to exactly one
//!   shard with its value intact; nothing is lost, nothing is conflated,
//!   even when every shard exports identical metric names.
//! * **Restart semantics** — re-absorbing a restarted shard's registry
//!   under its old prefix replaces gauges (latest wins) rather than
//!   double-counting them; counters accumulate by design, which is why a
//!   scraper that wants replace-semantics rebuilds from a fresh registry
//!   (as the fleet's `/v1/metrics` does).

use baryon_sim::check;
use baryon_sim::telemetry::Registry;

/// A metric name from a small fixed pool — collisions *between shards*
/// are the interesting case, so every shard draws from the same pool.
fn name(g: &mut check::Gen, kind: &str) -> String {
    let comp = ["serve", "ctrl", "cache.l2", "mem"][g.choice(4)];
    let field = ["jobs.done", "reads", "bytes", "lat"][g.choice(4)];
    format!("{comp}.{field}.{kind}")
}

/// An arbitrary shard registry: counters, gauges, and summaries with
/// bounded magnitudes (counts, not bit patterns — sums must not overflow).
fn shard_registry(g: &mut check::Gen) -> Registry {
    let mut reg = Registry::new();
    for _ in 0..g.range(0, 6) {
        reg.add(&name(g, "c"), g.range(0, 1 << 40));
    }
    for _ in 0..g.range(0, 6) {
        // Finite, comparable gauges (no NaN: the equality below must hold).
        reg.set_gauge(&name(g, "g"), g.range(0, 1 << 20) as f64);
    }
    for _ in 0..g.range(0, 3) {
        let n = name(g, "s");
        for _ in 0..g.range(1, 6) {
            reg.observe(&n, g.range(0, 1 << 40));
        }
    }
    reg
}

#[test]
fn absorbing_disjoint_prefixes_is_order_independent() {
    check::props("absorb_order_independent").run(|g| {
        let k = g.usize_range(1, 5);
        let shards: Vec<Registry> = (0..k).map(|_| shard_registry(g)).collect();
        let mut forward = Registry::new();
        for (i, shard) in shards.iter().enumerate() {
            forward.absorb(&format!("shard{i}"), shard);
        }
        let mut reverse = Registry::new();
        for (i, shard) in shards.iter().enumerate().rev() {
            reverse.absorb(&format!("shard{i}"), shard);
        }
        assert_eq!(
            forward.snapshot(),
            reverse.snapshot(),
            "distinct prefixes must commute"
        );
    });
}

#[test]
fn absorbed_metrics_map_back_to_exactly_one_shard() {
    check::props("absorb_collision_free").run(|g| {
        let k = g.usize_range(1, 5);
        let shards: Vec<Registry> = (0..k).map(|_| shard_registry(g)).collect();
        let mut merged = Registry::new();
        for (i, shard) in shards.iter().enumerate() {
            merged.absorb(&format!("shard{i}"), shard);
        }
        // Every shard metric appears under its own prefix with its exact
        // value — shards exporting identical names never conflate.
        for (i, shard) in shards.iter().enumerate() {
            for (name, value) in shard.counters() {
                assert_eq!(merged.counter(&format!("shard{i}.{name}")), value);
            }
            for (name, value) in shard.gauges() {
                assert_eq!(merged.gauge(&format!("shard{i}.{name}")), value);
            }
            for (name, h) in shard.summaries() {
                let m = merged
                    .summary(&format!("shard{i}.{name}"))
                    .expect("summary survives the merge");
                assert_eq!((m.count(), m.min(), m.max()), (h.count(), h.min(), h.max()));
            }
        }
        // ... and nothing else appears: the merged registry is exactly the
        // union, so every merged key parses back to a live (shard, name).
        for (full, _) in merged.counters() {
            let (prefix, rest) = full.split_once('.').expect("prefixed name");
            let i: usize = prefix
                .strip_prefix("shard")
                .expect("shard prefix")
                .parse()
                .expect("shard index");
            assert!(i < k, "{full} names a shard that was never absorbed");
            assert!(
                shards[i].counters().any(|(n, _)| n == rest),
                "{full} has no source metric"
            );
        }
        let merged_count = merged.counters().count();
        let source_count: usize = shards.iter().map(|s| s.counters().count()).sum();
        assert_eq!(
            merged_count, source_count,
            "no key collisions across prefixes"
        );
    });
}

#[test]
fn reabsorbing_a_restarted_shard_replaces_gauges() {
    check::props("absorb_restart_gauges_replace").run(|g| {
        let before = shard_registry(g);
        let after = shard_registry(g); // the restarted incarnation
        let mut merged = Registry::new();
        merged.absorb("shard0", &before);
        merged.absorb("shard0", &after);
        // Gauges are instantaneous readings: the restarted shard's value
        // wins outright, never `before + after`.
        for (name, value) in after.gauges() {
            assert_eq!(
                merged.gauge(&format!("shard0.{name}")),
                value,
                "gauge {name} must read the latest incarnation"
            );
        }
        // Counters accumulate on re-absorb (absorb is a merge, not a
        // scrape) — the documented reason a fleet scraper folds shards
        // into a *fresh* registry each time. A fresh rebuild restores
        // replace-semantics for counters too:
        let mut rebuilt = Registry::new();
        rebuilt.absorb("shard0", &after);
        for (name, value) in after.counters() {
            assert!(
                merged.counter(&format!("shard0.{name}")) >= value,
                "merge accumulated"
            );
            assert_eq!(
                rebuilt.counter(&format!("shard0.{name}")),
                value,
                "fresh scrape must not double-count {name}"
            );
        }
        assert_eq!(rebuilt.snapshot(), {
            let mut expect = Registry::new();
            expect.absorb("shard0", &after);
            expect.snapshot()
        });
    });
}

//! Deterministic random number generation for simulations.
//!
//! We intentionally do not use an external RNG crate in the hot path: the
//! simulator needs a tiny, fast, splittable generator whose streams are stable
//! across platforms and releases so that every experiment is reproducible
//! bit-for-bit. [`SimRng`] is xoshiro256++ seeded through splitmix64, the
//! standard recommendation of the xoshiro authors.

/// A deterministic xoshiro256++ random number generator.
///
/// # Examples
///
/// ```
/// use baryon_sim::rng::SimRng;
///
/// let mut rng = SimRng::from_seed(7);
/// let x = rng.gen_range(0, 10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// splitmix64 step, used for seeding and for stateless hashing.
///
/// # Examples
///
/// ```
/// let h = baryon_sim::rng::splitmix64(123);
/// assert_ne!(h, 123);
/// ```
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mixes two values into one hash. Used for content generation, where a
/// deterministic function of (address, version) must look random.
///
/// # Examples
///
/// ```
/// use baryon_sim::rng::mix64;
/// assert_ne!(mix64(1, 2), mix64(2, 1));
/// ```
pub fn mix64(a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(a) ^ b.rotate_left(32))
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(x);
        }
        // xoshiro must not be seeded with all zeros.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        SimRng { s }
    }

    /// Derives an independent child generator; used to give each core or
    /// workload region its own stream.
    pub fn split(&mut self, stream: u64) -> SimRng {
        SimRng::from_seed(self.next_u64() ^ splitmix64(stream))
    }

    /// Exposes the raw xoshiro256++ state for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a checkpointed [`SimRng::state`]; the
    /// restored generator continues the stream bit-identically.
    pub fn from_state(s: [u64; 4]) -> Self {
        SimRng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi, got [{lo}, {hi})");
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // the bias for simulation-sized ranges is ~2^-64.
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Returns a uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Chooses an index according to a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "choose_weighted requires a non-empty positive weight vector"
        );
        let mut x = self.gen_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SimRng::from_seed(99);
        let mut b = SimRng::from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = SimRng::from_seed(5);
        let mut c0 = root.split(0);
        let mut c1 = root.split(1);
        assert_ne!(c0.next_u64(), c1.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn gen_range_empty_panics() {
        SimRng::from_seed(0).gen_range(5, 5);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::from_seed(11);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = SimRng::from_seed(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = SimRng::from_seed(23);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[rng.choose_weighted(&[1.0, 2.0, 3.0])] += 1;
        }
        assert!(counts[0] < counts[1] && counts[1] < counts[2]);
        let f0 = counts[0] as f64 / 60_000.0;
        assert!((f0 - 1.0 / 6.0).abs() < 0.02);
    }

    #[test]
    fn zero_weight_entries_never_chosen() {
        let mut rng = SimRng::from_seed(29);
        for _ in 0..1000 {
            assert_eq!(rng.choose_weighted(&[0.0, 1.0, 0.0]), 1);
        }
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = SimRng::from_seed(77);
        a.next_u64();
        let mut b = SimRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mix64_is_order_sensitive() {
        assert_ne!(mix64(0, 1), mix64(1, 0));
        assert_ne!(mix64(0, 0), 0);
    }
}

//! Deterministic fault injection for file I/O — the "hostile disk".
//!
//! Production Baryon deployments journal and checkpoint to real disks,
//! and real disks lie: writes tear, volumes fill, fsync fails, bytes rot,
//! reads flip. This module injects every one of those faults *under* the
//! durability layer (checkpoint writes, journal appends, checkpoint
//! reads) so the recovery ladder above can be exercised in CI instead of
//! assumed.
//!
//! Everything is seeded and rate-configured in parts-per-million, so a
//! failing chaos run reproduces bit-for-bit from its seed. When every
//! rate is zero (the default) the module is disabled and the free
//! functions below compile down to the plain `std::fs` calls plus one
//! atomic-pointer load.
//!
//! # Environment knobs
//!
//! | Variable | Meaning |
//! |----------|---------|
//! | `BARYON_CHAOS_SEED` | RNG seed for all injection decisions (default 0) |
//! | `BARYON_CHAOS_WRITE_FAIL_PPM` | short write: a prefix persists, the call errors |
//! | `BARYON_CHAOS_ENOSPC_PPM` | write fails with "no space", nothing persists |
//! | `BARYON_CHAOS_FSYNC_FAIL_PPM` | `sync_data` errors (data stays in page cache) |
//! | `BARYON_CHAOS_CORRUPT_PPM` | silent post-write single-byte flip on disk |
//! | `BARYON_CHAOS_READ_FLIP_PPM` | single-byte flip in a read buffer (disk is untouched) |
//! | `BARYON_CHAOS_RESPONSE_CORRUPT_PPM` | single-byte flip in an HTTP response body after its CRC is stamped (the "lying shard") |
//!
//! The process-global injector is initialized from the environment on
//! first use; set the variables before the process starts (the fleet
//! launcher passes them to shard children explicitly).

use crate::rng::SimRng;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One injection decision per million operations, per fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Short write: a random prefix persists and the call errors.
    pub write_fail_ppm: u32,
    /// Write fails with an out-of-space error; nothing persists.
    pub enospc_ppm: u32,
    /// `sync_data` errors without syncing.
    pub fsync_fail_ppm: u32,
    /// Silent single-byte corruption of just-written data.
    pub corrupt_ppm: u32,
    /// Single-byte flip in a read buffer (the file itself is untouched).
    pub read_flip_ppm: u32,
    /// Single-byte flip in an outgoing HTTP response body after its CRC
    /// header was computed.
    pub response_corrupt_ppm: u32,
}

impl FaultRates {
    /// Whether any fault class can fire.
    pub fn any(&self) -> bool {
        self.write_fail_ppm > 0
            || self.enospc_ppm > 0
            || self.fsync_fail_ppm > 0
            || self.corrupt_ppm > 0
            || self.read_flip_ppm > 0
            || self.response_corrupt_ppm > 0
    }
}

/// How many faults of each class have fired so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Injected short writes.
    pub writes_failed: u64,
    /// Injected out-of-space errors.
    pub enospc: u64,
    /// Injected fsync failures.
    pub fsyncs_failed: u64,
    /// Silent post-write corruptions.
    pub corrupted: u64,
    /// Read-buffer byte flips.
    pub read_flips: u64,
    /// Response-body byte flips.
    pub responses_corrupted: u64,
}

/// A seeded, rate-configured fault injector for file I/O.
///
/// # Examples
///
/// ```
/// use baryon_sim::faultfs::{FaultFs, FaultRates};
///
/// // Every write fails with "no space".
/// let fs = FaultFs::new(7, FaultRates { enospc_ppm: 1_000_000, ..FaultRates::default() });
/// let path = std::env::temp_dir().join(format!("faultfs-doc-{}", std::process::id()));
/// assert!(fs.write_file(&path, b"payload").is_err());
/// assert!(!path.exists());
/// assert_eq!(fs.counts().enospc, 1);
/// ```
#[derive(Debug)]
pub struct FaultFs {
    rates: FaultRates,
    rng: Mutex<SimRng>,
    writes_failed: AtomicU64,
    enospc: AtomicU64,
    fsyncs_failed: AtomicU64,
    corrupted: AtomicU64,
    read_flips: AtomicU64,
    responses_corrupted: AtomicU64,
}

impl FaultFs {
    /// Creates an injector with the given seed and rates.
    pub fn new(seed: u64, rates: FaultRates) -> FaultFs {
        FaultFs {
            rates,
            rng: Mutex::new(SimRng::from_seed(seed)),
            writes_failed: AtomicU64::new(0),
            enospc: AtomicU64::new(0),
            fsyncs_failed: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            read_flips: AtomicU64::new(0),
            responses_corrupted: AtomicU64::new(0),
        }
    }

    /// Builds an injector from `BARYON_CHAOS_*` environment variables, or
    /// `None` when every rate is zero (chaos disabled).
    pub fn from_env() -> Option<FaultFs> {
        let rates = FaultRates {
            write_fail_ppm: env_ppm("BARYON_CHAOS_WRITE_FAIL_PPM"),
            enospc_ppm: env_ppm("BARYON_CHAOS_ENOSPC_PPM"),
            fsync_fail_ppm: env_ppm("BARYON_CHAOS_FSYNC_FAIL_PPM"),
            corrupt_ppm: env_ppm("BARYON_CHAOS_CORRUPT_PPM"),
            read_flip_ppm: env_ppm("BARYON_CHAOS_READ_FLIP_PPM"),
            response_corrupt_ppm: env_ppm("BARYON_CHAOS_RESPONSE_CORRUPT_PPM"),
        };
        if !rates.any() {
            return None;
        }
        let seed = std::env::var("BARYON_CHAOS_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        Some(FaultFs::new(seed, rates))
    }

    /// The rates this injector was built with.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// A snapshot of how many faults have fired.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            writes_failed: self.writes_failed.load(Ordering::Relaxed),
            enospc: self.enospc.load(Ordering::Relaxed),
            fsyncs_failed: self.fsyncs_failed.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            read_flips: self.read_flips.load(Ordering::Relaxed),
            responses_corrupted: self.responses_corrupted.load(Ordering::Relaxed),
        }
    }

    /// One seeded dice roll against a PPM rate.
    fn roll(&self, ppm: u32) -> bool {
        if ppm == 0 {
            return false;
        }
        let mut rng = self.rng.lock().expect("faultfs rng poisoned");
        rng.gen_range(0, 1_000_000) < ppm as u64
    }

    /// A seeded index into `0..len` (for picking flip offsets / prefix
    /// lengths).
    fn pick(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let mut rng = self.rng.lock().expect("faultfs rng poisoned");
        rng.gen_range(0, len as u64) as usize
    }

    /// `std::fs::write` with injected ENOSPC, short writes, and silent
    /// post-write corruption.
    ///
    /// # Errors
    ///
    /// Real filesystem errors, plus the injected ones described above. On
    /// an injected short write a prefix of `bytes` persists at `path`;
    /// on injected ENOSPC nothing does.
    pub fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.roll(self.rates.enospc_ppm) {
            self.enospc.fetch_add(1, Ordering::Relaxed);
            return Err(injected("no space left on device"));
        }
        if self.roll(self.rates.write_fail_ppm) {
            self.writes_failed.fetch_add(1, Ordering::Relaxed);
            let keep = self.pick(bytes.len());
            let _ = std::fs::write(path, &bytes[..keep]);
            return Err(injected("short write: disk persisted a prefix"));
        }
        if self.roll(self.rates.corrupt_ppm) && !bytes.is_empty() {
            self.corrupted.fetch_add(1, Ordering::Relaxed);
            let mut rotted = bytes.to_vec();
            let at = self.pick(rotted.len());
            rotted[at] ^= 1 << self.pick(8);
            // Silent: the caller sees success, the disk holds a lie.
            return std::fs::write(path, &rotted);
        }
        std::fs::write(path, bytes)
    }

    /// `std::fs::read` with injected single-byte flips in the returned
    /// buffer (the file on disk is untouched).
    ///
    /// # Errors
    ///
    /// Real filesystem errors only; read flips are silent.
    pub fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = std::fs::read(path)?;
        if self.roll(self.rates.read_flip_ppm) && !bytes.is_empty() {
            self.read_flips.fetch_add(1, Ordering::Relaxed);
            let at = self.pick(bytes.len());
            bytes[at] ^= 1 << self.pick(8);
        }
        Ok(bytes)
    }

    /// `File::write_all` (journal append) with injected ENOSPC, short
    /// writes, and silent corruption of the appended record.
    ///
    /// # Errors
    ///
    /// Real I/O errors, plus the injected ones. On an injected short
    /// write a prefix of `buf` lands in the file (a torn tail); on
    /// injected ENOSPC nothing is appended.
    pub fn append(&self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        if self.roll(self.rates.enospc_ppm) {
            self.enospc.fetch_add(1, Ordering::Relaxed);
            return Err(injected("no space left on device"));
        }
        if self.roll(self.rates.write_fail_ppm) {
            self.writes_failed.fetch_add(1, Ordering::Relaxed);
            let keep = self.pick(buf.len());
            let _ = file.write_all(&buf[..keep]);
            return Err(injected("short append: a torn tail persisted"));
        }
        if self.roll(self.rates.corrupt_ppm) && !buf.is_empty() {
            self.corrupted.fetch_add(1, Ordering::Relaxed);
            let mut rotted = buf.to_vec();
            let at = self.pick(rotted.len());
            rotted[at] ^= 1 << self.pick(8);
            return file.write_all(&rotted);
        }
        file.write_all(buf)
    }

    /// `File::sync_data` with injected fsync failures.
    ///
    /// # Errors
    ///
    /// Real fsync errors, plus injected ones (the data may still be
    /// sitting unsynced in the page cache, exactly like a real fsync
    /// failure).
    pub fn sync_data(&self, file: &File) -> io::Result<()> {
        if self.roll(self.rates.fsync_fail_ppm) {
            self.fsyncs_failed.fetch_add(1, Ordering::Relaxed);
            return Err(injected("fsync failed"));
        }
        file.sync_data()
    }

    /// Flips one byte of an outgoing response body (the "lying shard").
    /// Returns whether a flip happened.
    pub fn corrupt_response(&self, body: &mut [u8]) -> bool {
        if body.is_empty() || !self.roll(self.rates.response_corrupt_ppm) {
            return false;
        }
        self.responses_corrupted.fetch_add(1, Ordering::Relaxed);
        let at = self.pick(body.len());
        body[at] ^= 1 << self.pick(8);
        true
    }
}

/// An injected-fault error, distinguishable in logs by its message.
fn injected(what: &str) -> io::Error {
    io::Error::other(format!("faultfs injected: {what}"))
}

fn env_ppm(name: &str) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// The process-global injector, initialized from `BARYON_CHAOS_*` on
/// first use. `None` when chaos is disabled.
pub fn global() -> Option<&'static FaultFs> {
    static GLOBAL: OnceLock<Option<FaultFs>> = OnceLock::new();
    GLOBAL.get_or_init(FaultFs::from_env).as_ref()
}

/// `std::fs::write` through the global injector (a plain write when chaos
/// is disabled).
///
/// # Errors
///
/// Real filesystem errors plus injected ones; see [`FaultFs::write_file`].
pub fn write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    match global() {
        Some(fs) => fs.write_file(path, bytes),
        None => std::fs::write(path, bytes),
    }
}

/// `std::fs::read` through the global injector.
///
/// # Errors
///
/// Real filesystem errors; see [`FaultFs::read_file`].
pub fn read_file(path: &Path) -> io::Result<Vec<u8>> {
    match global() {
        Some(fs) => fs.read_file(path),
        None => std::fs::read(path),
    }
}

/// `File::write_all` through the global injector.
///
/// # Errors
///
/// Real I/O errors plus injected ones; see [`FaultFs::append`].
pub fn append(file: &mut File, buf: &[u8]) -> io::Result<()> {
    match global() {
        Some(fs) => fs.append(file, buf),
        None => file.write_all(buf),
    }
}

/// `File::sync_data` through the global injector.
///
/// # Errors
///
/// Real fsync errors plus injected ones; see [`FaultFs::sync_data`].
pub fn sync_data(file: &File) -> io::Result<()> {
    match global() {
        Some(fs) => fs.sync_data(file),
        None => file.sync_data(),
    }
}

/// Flips one byte of `body` through the global injector; `false` (and
/// zero cost beyond one atomic load) when chaos is disabled.
pub fn corrupt_response(body: &mut [u8]) -> bool {
    global().is_some_and(|fs| fs.corrupt_response(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const ALWAYS: u32 = 1_000_000;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("baryon-faultfs-{tag}-{}", std::process::id()))
    }

    #[test]
    fn disabled_rates_never_fire() {
        let fs = FaultFs::new(1, FaultRates::default());
        let path = tmp("clean");
        for _ in 0..100 {
            fs.write_file(&path, b"payload").expect("clean write");
            assert_eq!(fs.read_file(&path).expect("clean read"), b"payload");
        }
        assert_eq!(fs.counts(), FaultCounts::default());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn enospc_persists_nothing() {
        let fs = FaultFs::new(
            2,
            FaultRates {
                enospc_ppm: ALWAYS,
                ..FaultRates::default()
            },
        );
        let path = tmp("enospc");
        let _ = std::fs::remove_file(&path);
        assert!(fs.write_file(&path, b"payload").is_err());
        assert!(!path.exists(), "ENOSPC must not create the file");
        assert_eq!(fs.counts().enospc, 1);
    }

    #[test]
    fn short_write_persists_a_strict_prefix() {
        let fs = FaultFs::new(
            3,
            FaultRates {
                write_fail_ppm: ALWAYS,
                ..FaultRates::default()
            },
        );
        let path = tmp("short");
        assert!(fs.write_file(&path, b"0123456789").is_err());
        let on_disk = std::fs::read(&path).expect("prefix exists");
        assert!(on_disk.len() < 10, "must be short: {}", on_disk.len());
        assert_eq!(&on_disk[..], &b"0123456789"[..on_disk.len()]);
        assert_eq!(fs.counts().writes_failed, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_silent_and_single_byte() {
        let fs = FaultFs::new(
            4,
            FaultRates {
                corrupt_ppm: ALWAYS,
                ..FaultRates::default()
            },
        );
        let path = tmp("rot");
        fs.write_file(&path, b"0123456789")
            .expect("reports success");
        let on_disk = std::fs::read(&path).expect("file exists");
        let diffs = on_disk
            .iter()
            .zip(b"0123456789".iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1, "exactly one byte rotted");
        assert_eq!(fs.counts().corrupted, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_flip_leaves_disk_intact() {
        let fs = FaultFs::new(
            5,
            FaultRates {
                read_flip_ppm: ALWAYS,
                ..FaultRates::default()
            },
        );
        let path = tmp("flip");
        std::fs::write(&path, b"0123456789").expect("setup");
        let seen = fs.read_file(&path).expect("read ok");
        assert_ne!(seen, b"0123456789", "buffer was flipped");
        assert_eq!(
            std::fs::read(&path).expect("reread"),
            b"0123456789",
            "disk untouched"
        );
        assert_eq!(fs.counts().read_flips, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_and_fsync_faults_fire() {
        let fs = FaultFs::new(
            6,
            FaultRates {
                fsync_fail_ppm: ALWAYS,
                ..FaultRates::default()
            },
        );
        let path = tmp("fsync");
        let mut file = File::create(&path).expect("create");
        fs.append(&mut file, b"record").expect("append ok");
        assert!(fs.sync_data(&file).is_err(), "fsync injected");
        assert_eq!(fs.counts().fsyncs_failed, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn same_seed_same_decisions() {
        let rates = FaultRates {
            corrupt_ppm: 500_000,
            ..FaultRates::default()
        };
        let path_a = tmp("det-a");
        let path_b = tmp("det-b");
        let run = |path: &Path| {
            let fs = FaultFs::new(99, rates);
            let mut outcomes = Vec::new();
            for i in 0..64u8 {
                fs.write_file(path, &[i; 16]).expect("write");
                outcomes.push(std::fs::read(path).expect("read"));
            }
            outcomes
        };
        assert_eq!(run(&path_a), run(&path_b), "seeded chaos replays exactly");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn response_corruption_respects_rate() {
        let fs = FaultFs::new(
            7,
            FaultRates {
                response_corrupt_ppm: ALWAYS,
                ..FaultRates::default()
            },
        );
        let mut body = b"{\"ok\":true}".to_vec();
        assert!(fs.corrupt_response(&mut body));
        assert_ne!(body, b"{\"ok\":true}");
        let clean = FaultFs::new(7, FaultRates::default());
        let mut body = b"{\"ok\":true}".to_vec();
        assert!(!clean.corrupt_response(&mut body));
        assert_eq!(body, b"{\"ok\":true}");
    }

    #[test]
    fn from_env_is_none_without_rates() {
        // The test runner may set chaos vars in other tests' processes but
        // not here; guard on the actual environment.
        if std::env::vars().any(|(k, _)| k.starts_with("BARYON_CHAOS_")) {
            return;
        }
        assert!(FaultFs::from_env().is_none());
    }
}

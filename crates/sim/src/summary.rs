//! Statistical summary helpers used by the benchmark harness: geometric means
//! (the paper reports geomean speedups) and percentile boxes (Fig 4 uses
//! 25/75 quartile boxes with 5/95 whiskers).

/// Geometric mean of a slice of positive values.
///
/// Returns `None` for an empty slice or if any value is non-positive.
///
/// # Examples
///
/// ```
/// let g = baryon_sim::summary::geomean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Linear-interpolated percentile of an unsorted slice, `p` in `[0, 100]`.
///
/// Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// let p = baryon_sim::summary::percentile(&[1.0, 2.0, 3.0, 4.0], 50.0).unwrap();
/// assert!((p - 2.5).abs() < 1e-12);
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// A five-number summary: 5/25/50/75/95 percentiles, as used by the Fig 4
/// box-and-whisker plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxSummary {
    /// 5th percentile (lower whisker).
    pub p5: f64,
    /// 25th percentile (box bottom).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile (box top).
    pub p75: f64,
    /// 95th percentile (upper whisker).
    pub p95: f64,
}

impl BoxSummary {
    /// Computes the summary; `None` for an empty slice.
    ///
    /// # Examples
    ///
    /// ```
    /// use baryon_sim::summary::BoxSummary;
    /// let vals: Vec<f64> = (0..=100).map(f64::from).collect();
    /// let b = BoxSummary::from_values(&vals).unwrap();
    /// assert!((b.p50 - 50.0).abs() < 1e-9);
    /// ```
    pub fn from_values(values: &[f64]) -> Option<Self> {
        Some(BoxSummary {
            p5: percentile(values, 5.0)?,
            p25: percentile(values, 25.0)?,
            p50: percentile(values, 50.0)?,
            p75: percentile(values, 75.0)?,
            p95: percentile(values, 95.0)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_or_nonpositive() {
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[1.0, 0.0]).is_none());
        assert!(geomean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn geomean_of_identical_is_identity() {
        assert!((geomean(&[3.0; 7]).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn percentile_endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(3.0));
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 73.0), Some(42.0));
    }

    #[test]
    fn box_summary_ordered() {
        let vals: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let b = BoxSummary::from_values(&vals).unwrap();
        assert!(b.p5 <= b.p25 && b.p25 <= b.p50 && b.p50 <= b.p75 && b.p75 <= b.p95);
    }

    #[test]
    fn box_summary_empty_is_none() {
        assert!(BoxSummary::from_values(&[]).is_none());
    }
}

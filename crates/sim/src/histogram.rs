//! A compact power-of-two-bucketed histogram for latency distributions.
//!
//! Memory-system analysis often needs more than averages — e.g. the tail
//! latencies behind Fig 11's serve rates. [`Histogram`] buckets samples by
//! `floor(log2(value))`, giving constant-size storage and ~1.4x relative
//! resolution, which is plenty for cycle latencies spanning 10^1..10^5.

use crate::wire::{Reader, WireError, Writer};

/// Number of log2 buckets (covers values up to 2^47).
const BUCKETS: usize = 48;

/// A log2-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use baryon_sim::histogram::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [10, 20, 40, 800] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) >= 16);
/// assert!(h.percentile(99.0) >= 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = (64 - value.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample; 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (`p` in 0..=100): the lower bound of the
    /// bucket containing the p-th sample. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if b == 0 { 0 } else { 1u64 << (b - 1) };
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Serializes the full histogram state for checkpointing.
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.buckets.len());
        for b in &self.buckets {
            w.u64(*b);
        }
        w.u64(self.count);
        w.u128(self.sum);
        w.u64(self.min);
        w.u64(self.max);
    }

    /// Rebuilds a histogram from [`Histogram::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated or malformed payload.
    pub fn load_state(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq()?;
        if n != BUCKETS {
            return Err(WireError::BadLength(n as u64));
        }
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(r.u64()?);
        }
        Ok(Histogram {
            buckets,
            count: r.u64()?,
            sum: r.u128()?,
            min: r.u64()?,
            max: r.u64()?,
        })
    }

    /// Non-empty `(bucket_lower_bound, count)` pairs, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(b, n)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, *n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn percentiles_monotonic() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        // Bucket resolution: p50 of 1..=1000 is in [256, 512].
        assert!((256..=512).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn zero_and_one_land_in_low_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), 0);
    }

    #[test]
    fn huge_values_clamp() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
        assert_eq!(a.mean(), 252.5);
    }

    #[test]
    fn buckets_report_lower_bounds() {
        let mut h = Histogram::new();
        h.record(3); // bucket lower bound 2
        h.record(100); // bucket lower bound 64
        let b = h.buckets();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], (2, 1));
        assert_eq!(b[1], (64, 1));
    }
}

//! A minimal JSON value model, writer, and parser.
//!
//! The workspace is hermetic (no external crates), but tools still want
//! machine-readable input and output: `baryon-cli run --json`, bench
//! summaries, and the `baryon-serve` job server, whose job specs arrive as
//! JSON request bodies. This module covers exactly that need — building,
//! *emitting* ([`Json::render`]), and *parsing* ([`parse`]) JSON — with
//! precise error positions on malformed input.
//!
//! # Examples
//!
//! ```
//! use baryon_sim::json::Json;
//!
//! let doc = Json::obj([
//!     ("workload", Json::from("505.mcf_r")),
//!     ("cycles", Json::from(123456u64)),
//!     ("ipc", Json::from(1.25)),
//!     ("fast", Json::from(true)),
//! ]);
//! assert_eq!(
//!     doc.render(),
//!     r#"{"workload":"505.mcf_r","cycles":123456,"ipc":1.25,"fast":true}"#
//! );
//! ```

/// A JSON value. Objects preserve insertion order so emitted documents are
/// stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, emitted without a fractional part.
    U64(u64),
    /// A signed integer, emitted without a fractional part.
    I64(i64),
    /// A floating-point number; non-finite values emit as `null` (JSON has
    /// no NaN/Infinity).
    F64(f64),
    /// A string (escaped on emit).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let mut buf = [0u8; 20];
                out.push_str(format_u64(*n, &mut buf));
            }
            Json::I64(n) => {
                if *n < 0 {
                    out.push('-');
                }
                let mut buf = [0u8; 20];
                out.push_str(format_u64(n.unsigned_abs(), &mut buf));
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{}` on f64 is the shortest roundtrip representation,
                    // which is valid JSON except it may omit the fraction.
                    let s = format!("{x}");
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn format_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ascii")
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::I64(n)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Maximum container nesting depth accepted by [`parse`]; deeper documents
/// are rejected instead of risking a stack overflow.
pub const MAX_DEPTH: usize = 128;

/// A parse failure with the exact input position where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (bytes since the last newline).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}, column {}: {} (byte {})",
            self.line, self.col, self.message, self.offset
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (surrounding whitespace allowed).
///
/// Numbers map onto the [`Json`] variants the emitter uses: integer
/// literals become [`Json::U64`] (or [`Json::I64`] when negative), and
/// anything with a fraction or exponent — or an integer too large for 64
/// bits — becomes [`Json::F64`]. Object key order and duplicate keys are
/// preserved, so `parse(v.render())` reproduces `v` exactly for every
/// value the emitter can produce.
///
/// # Examples
///
/// ```
/// use baryon_sim::json::{parse, Json};
///
/// let v = parse(r#"{"workload":"505.mcf_r","insts":1000}"#).unwrap();
/// assert_eq!(
///     v,
///     Json::obj([
///         ("workload", Json::from("505.mcf_r")),
///         ("insts", Json::from(1000u64)),
///     ])
/// );
///
/// let err = parse("{\"a\": nope}").unwrap_err();
/// assert_eq!((err.line, err.col), (1, 7));
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending byte for any
/// input that is not a single well-formed JSON value.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        text: input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        self.err_at(self.pos, message)
    }

    fn err_at(&self, offset: usize, message: impl Into<String>) -> ParseError {
        let before = &self.bytes[..offset.min(self.bytes.len())];
        let line = 1 + before.iter().filter(|b| **b == b'\n').count();
        let col = offset
            - before
                .iter()
                .rposition(|b| *b == b'\n')
                .map_or(0, |i| i + 1)
            + 1;
        ParseError {
            offset,
            line,
            col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input, expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected `{word}`")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        let open = self.pos;
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let run_start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.text[run_start..self.pos]);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err_at(open, "unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, ParseError> {
        let c = match self.peek() {
            Some(b'"') => '"',
            Some(b'\\') => '\\',
            Some(b'/') => '/',
            Some(b'b') => '\u{8}',
            Some(b'f') => '\u{c}',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            Some(b't') => '\t',
            Some(b'u') => {
                self.pos += 1;
                return self.unicode_escape();
            }
            _ => return Err(self.err("invalid escape sequence")),
        };
        self.pos += 1;
        Ok(c)
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate in \\u escape"));
        }
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("expected low surrogate after high surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits in \\u escape")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digits in number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after decimal point"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            self.digits();
        }
        let token = &self.text[start..self.pos];
        if !is_float {
            if negative {
                if let Ok(n) = token.parse::<i64>() {
                    return Ok(Json::I64(n));
                }
            } else if let Ok(n) = token.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        token
            .parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err_at(start, "number out of range"))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(false).render(), "false");
        assert_eq!(Json::from(0u64).render(), "0");
        assert_eq!(Json::from(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::from(-42i64).render(), "-42");
        assert_eq!(Json::from(i64::MIN).render(), "-9223372036854775808");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
        assert_eq!(Json::from(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_control_and_quotes() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\r").render(),
            r#""a\"b\\c\nd\te\r""#
        );
        assert_eq!(Json::from("\u{1}").render(), r#""\u0001""#);
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(Json::from("µops").render(), "\"µops\"");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let doc = Json::obj([
            ("xs", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("inner", Json::obj([("k", Json::Null)])),
            ("empty", Json::arr([])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"xs":[1,2],"inner":{"k":null},"empty":[]}"#
        );
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = Json::obj([("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(doc.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("0").unwrap(), Json::U64(0));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(parse("-9223372036854775808").unwrap(), Json::I64(i64::MIN));
        assert_eq!(parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(parse("-2.5e-1").unwrap(), Json::F64(-0.25));
        assert_eq!(parse(" \t\r\n\"hi\" ").unwrap(), Json::from("hi"));
    }

    #[test]
    fn parse_integer_overflow_falls_back_to_f64() {
        // One past u64::MAX / below i64::MIN: still numbers, just floats.
        assert_eq!(
            parse("18446744073709551616").unwrap(),
            Json::F64(18446744073709551616.0)
        );
        assert_eq!(
            parse("-9223372036854775809").unwrap(),
            Json::F64(-9223372036854775809.0)
        );
    }

    #[test]
    fn parse_nested_containers() {
        let v = parse(r#" { "xs" : [ 1 , -2 , {"k":null} ] , "b" : true } "#).unwrap();
        assert_eq!(
            v,
            Json::obj([
                (
                    "xs",
                    Json::arr([Json::U64(1), Json::I64(-2), Json::obj([("k", Json::Null)]),]),
                ),
                ("b", Json::Bool(true)),
            ])
        );
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\nd\te\r\b\f""#).unwrap(),
            Json::from("a\"b\\c/d\nd\te\r\u{8}\u{c}")
        );
        assert_eq!(parse(r#""\u0041\u00b5""#).unwrap(), Json::from("Aµ"));
        // Surrogate pair for U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::from("😀"));
        // Raw non-ASCII passes through.
        assert_eq!(parse("\"µops\"").unwrap(), Json::from("µops"));
    }

    #[test]
    fn parse_rejects_malformed_inputs() {
        for bad in [
            "",
            "   ",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":1,}",
            "{a:1}",
            "tru",
            "nul",
            "truex",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud83d\\u0041\"",
            "\"\\udc00\"",
            "01",
            "-",
            "1.",
            ".5",
            "+1",
            "1e",
            "1e+",
            "--1",
            "1 2",
            "[1] extra",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
        // Control characters must be escaped inside strings.
        assert!(parse("\"a\u{1}b\"").is_err());
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse("{\"a\": nope}").unwrap_err();
        assert_eq!((err.line, err.col, err.offset), (1, 7, 6));
        assert!(err.message.contains("expected"), "{}", err.message);

        let err = parse("[1,\n 2,\n x]").unwrap_err();
        assert_eq!((err.line, err.col), (3, 2));

        let display = format!("{err}");
        assert!(display.contains("line 3"), "{display}");
        assert!(display.contains("column 2"), "{display}");
    }

    #[test]
    fn parse_rejects_excessive_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{}", err.message);
        // One level short of the limit is fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn parse_preserves_duplicate_keys_and_order() {
        let v = parse(r#"{"z":1,"a":2,"z":3}"#).unwrap();
        assert_eq!(v.render(), r#"{"z":1,"a":2,"z":3}"#);
    }

    /// A generated value that renders to a *canonical* document: parsing it
    /// back yields the same variant. Negative integers use `I64`, floats
    /// are only kept as `F64` when their shortest rendering has a fraction
    /// or exponent (otherwise the emitter prints a plain integer, which the
    /// parser maps to `U64`/`I64`).
    fn gen_value(g: &mut crate::check::Gen, depth: usize) -> Json {
        let alternatives = if depth == 0 { 6 } else { 8 };
        match g.choice(alternatives) {
            0 => Json::Null,
            1 => Json::Bool(g.bool()),
            2 => Json::U64(g.u64()),
            3 => Json::I64(-(g.range(1, 1 << 62) as i64)),
            4 => {
                let magnitude = g.f64() * 1e9;
                let x = if g.bool() { -magnitude } else { magnitude };
                if format!("{x}").contains(['.', 'e', 'E']) {
                    Json::F64(x)
                } else if x < 0.0 {
                    Json::I64(x as i64)
                } else {
                    Json::U64(x as u64)
                }
            }
            5 => Json::Str(gen_string(g)),
            6 => Json::Arr(g.vec(0, 4, |g| gen_value(g, depth - 1))),
            7 => Json::Obj(g.vec(0, 4, |g| (gen_string(g), gen_value(g, depth - 1)))),
            _ => unreachable!(),
        }
    }

    fn gen_string(g: &mut crate::check::Gen) -> String {
        g.vec(0, 8, |g| match g.choice(5) {
            0 => '"',
            1 => '\\',
            2 => char::from(g.range(0, 0x20) as u8),
            3 => char::from_u32(g.range(0x20, 0xD800) as u32).expect("below surrogates"),
            _ => char::from_u32(g.range(0x1F300, 0x1F400) as u32).expect("astral plane"),
        })
        .into_iter()
        .collect()
    }

    #[test]
    fn prop_parse_inverts_render() {
        crate::check::props("json_parse_inverts_render").run(|g| {
            let v = gen_value(g, 3);
            let rendered = v.render();
            g.note(format!("doc = {rendered}"));
            let parsed = parse(&rendered).expect("emitter output must parse");
            assert_eq!(parsed, v, "parse(render(v)) != v for {rendered}");
            // And rendering is a fixpoint: re-rendering changes nothing.
            assert_eq!(parsed.render(), rendered);
        });
    }
}

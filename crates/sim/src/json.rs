//! A minimal JSON value model and writer.
//!
//! The workspace is hermetic (no external crates), but tools still want
//! machine-readable output: `baryon-cli run --json`, bench summaries, and
//! any future dashboards. This module covers exactly that need — building
//! and *emitting* JSON — and deliberately omits parsing, which nothing in
//! the workspace requires.
//!
//! # Examples
//!
//! ```
//! use baryon_sim::json::Json;
//!
//! let doc = Json::obj([
//!     ("workload", Json::from("505.mcf_r")),
//!     ("cycles", Json::from(123456u64)),
//!     ("ipc", Json::from(1.25)),
//!     ("fast", Json::from(true)),
//! ]);
//! assert_eq!(
//!     doc.render(),
//!     r#"{"workload":"505.mcf_r","cycles":123456,"ipc":1.25,"fast":true}"#
//! );
//! ```

/// A JSON value. Objects preserve insertion order so emitted documents are
/// stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, emitted without a fractional part.
    U64(u64),
    /// A signed integer, emitted without a fractional part.
    I64(i64),
    /// A floating-point number; non-finite values emit as `null` (JSON has
    /// no NaN/Infinity).
    F64(f64),
    /// A string (escaped on emit).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let mut buf = [0u8; 20];
                out.push_str(format_u64(*n, &mut buf));
            }
            Json::I64(n) => {
                if *n < 0 {
                    out.push('-');
                }
                let mut buf = [0u8; 20];
                out.push_str(format_u64(n.unsigned_abs(), &mut buf));
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{}` on f64 is the shortest roundtrip representation,
                    // which is valid JSON except it may omit the fraction.
                    let s = format!("{x}");
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn format_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ascii")
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::I64(n)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(false).render(), "false");
        assert_eq!(Json::from(0u64).render(), "0");
        assert_eq!(Json::from(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::from(-42i64).render(), "-42");
        assert_eq!(Json::from(i64::MIN).render(), "-9223372036854775808");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
        assert_eq!(Json::from(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_control_and_quotes() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\r").render(),
            r#""a\"b\\c\nd\te\r""#
        );
        assert_eq!(Json::from("\u{1}").render(), r#""\u0001""#);
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(Json::from("µops").render(), "\"µops\"");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let doc = Json::obj([
            ("xs", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("inner", Json::obj([("k", Json::Null)])),
            ("empty", Json::arr([])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"xs":[1,2],"inner":{"k":null},"empty":[]}"#
        );
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = Json::obj([("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(doc.render(), r#"{"z":1,"a":2}"#);
    }
}

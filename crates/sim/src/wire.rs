//! A tiny little-endian byte codec for checkpoint serialization.
//!
//! Checkpoints must be stable across platforms and releases, so every
//! component serializes its mutable state through this one codec instead of
//! ad-hoc `unsafe` casts or text formats. The encoding is deliberately
//! primitive — fixed-width little-endian integers, `u32`-length-prefixed
//! sequences, IEEE-754 bit patterns for floats — because primitive formats
//! are the easiest to keep bit-identical forever.
//!
//! # Examples
//!
//! ```
//! use baryon_sim::wire::{Reader, Writer};
//!
//! let mut w = Writer::new();
//! w.u64(42);
//! w.str("hello");
//! w.f64(0.25);
//! let bytes = w.into_bytes();
//!
//! let mut r = Reader::new(&bytes);
//! assert_eq!(r.u64().unwrap(), 42);
//! assert_eq!(r.str().unwrap(), "hello");
//! assert_eq!(r.f64().unwrap(), 0.25);
//! assert!(r.finish().is_ok());
//! ```

use std::error::Error;
use std::fmt;

/// A malformed or truncated wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the requested field.
    UnexpectedEof {
        /// Bytes requested beyond the end.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
    /// A length prefix exceeds the sanity bound for its collection.
    BadLength(u64),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An enum discriminant byte had no matching variant.
    BadTag(u8),
    /// Bytes were left over after the last expected field.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, available } => {
                write!(
                    f,
                    "unexpected end of payload: need {needed} bytes, {available} left"
                )
            }
            WireError::BadBool(b) => write!(f, "invalid boolean byte {b:#04x}"),
            WireError::BadLength(n) => write!(f, "implausible length prefix {n}"),
            WireError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::BadTag(t) => write!(f, "unknown discriminant {t:#04x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after last field"),
        }
    }
}

impl Error for WireError {}

/// Upper bound on any single length prefix: a checkpointed collection never
/// legitimately holds more than this many elements at simulation scales, so
/// anything larger is a corrupt or hostile payload and is rejected before
/// allocation.
const MAX_LEN: u64 = 1 << 32;

/// An append-only encoder producing the wire byte stream.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (checkpoints must not depend on the
    /// host word size).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (NaN-safe round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a `u32`-length-prefixed raw byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a sequence length prefix; follow with `len` encoded elements.
    pub fn seq(&mut self, len: usize) {
        self.u64(len as u64);
    }

    /// Appends an `Option` tag byte (0 = `None`, 1 = `Some`); when `Some`,
    /// follow with the payload fields.
    pub fn opt(&mut self, present: bool) {
        self.bool(present);
    }
}

/// A cursor decoding the wire byte stream produced by [`Writer`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over an encoded payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a `usize` encoded as `u64`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::BadLength(v))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a boolean byte, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadBool(b)),
        }
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads a `u32`-length-prefixed raw byte vector.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a sequence length prefix, rejecting implausible lengths.
    pub fn seq(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        if v > MAX_LEN {
            return Err(WireError::BadLength(v));
        }
        usize::try_from(v).map_err(|_| WireError::BadLength(v))
    }

    /// Reads an `Option` tag byte.
    pub fn opt(&mut self) -> Result<bool, WireError> {
        self.bool()
    }

    /// Asserts the whole payload was consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }
}

/// Lower-case hex encoding of a wire payload, for transports that only
/// carry UTF-8 text (JSON response bodies). Two characters per byte; no
/// prefix, no separators.
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xF) as usize] as char);
    }
    out
}

/// Decodes [`to_hex`] output back into bytes. Accepts upper- or
/// lower-case digits.
///
/// # Errors
///
/// [`WireError::BadLength`] on odd-length input, [`WireError::BadTag`] on
/// a non-hex character (carrying the offending byte).
pub fn from_hex(text: &str) -> Result<Vec<u8>, WireError> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(WireError::BadLength(bytes.len() as u64));
    }
    let digit = |c: u8| -> Result<u8, WireError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(WireError::BadTag(c)),
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.u128(u128::MAX / 3);
        w.usize(123_456);
        w.f64(-0.125);
        w.bool(true);
        w.bool(false);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn hex_round_trip_and_rejection() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(to_hex(&[0x00, 0xAB, 0xFF]), "00abff");
        assert_eq!(from_hex("00abff").unwrap(), vec![0x00, 0xAB, 0xFF]);
        assert_eq!(from_hex("00ABFF").unwrap(), vec![0x00, 0xAB, 0xFF]);
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        for i in 0..=255u8 {
            let bytes = vec![i, i.wrapping_mul(31)];
            assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        }
        assert_eq!(from_hex("abc"), Err(WireError::BadLength(3)));
        assert_eq!(from_hex("zz"), Err(WireError::BadTag(b'z')));
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = Writer::new();
        w.f64(nan);
        let bytes = w.into_bytes();
        let back = Reader::new(&bytes).f64().unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn string_and_bytes_round_trip() {
        let mut w = Writer::new();
        w.str("checkpoint ✓");
        w.bytes(&[1, 2, 3]);
        w.bytes(&[]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str().unwrap(), "checkpoint ✓");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.bytes().unwrap(), Vec::<u8>::new());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed_eof() {
        let mut w = Writer::new();
        w.u64(7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert_eq!(
            r.u64(),
            Err(WireError::UnexpectedEof {
                needed: 8,
                available: 5
            })
        );
    }

    #[test]
    fn bad_bool_and_trailing_bytes_rejected() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::BadBool(2)));
        let r = Reader::new(&[0, 0]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(2)));
    }

    #[test]
    fn implausible_seq_length_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).seq(),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn errors_display() {
        for e in [
            WireError::UnexpectedEof {
                needed: 8,
                available: 2,
            },
            WireError::BadBool(9),
            WireError::BadLength(u64::MAX),
            WireError::BadUtf8,
            WireError::BadTag(0xFF),
            WireError::TrailingBytes(3),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! A flat, open-addressed hash map for `u64` keys.
//!
//! The simulator's hottest lookups (per-line write versions, controller
//! side tables) are integer-keyed and latency-bound: `std::HashMap`'s
//! SipHash plus pointer-chasing buckets cost more than the lookup's
//! useful work. [`OpenMap`] stores control bytes, keys and values in
//! three parallel arrays (struct-of-arrays), probes linearly from a
//! Fibonacci-hashed start slot, and deletes with tombstones, so a probe
//! touches contiguous memory and resolves in a handful of cycles.
//!
//! Iteration order is *table order* (insertion/probe dependent), not
//! sorted: callers that serialize must sort, exactly as they already do
//! for `std::HashMap`.

/// Multiplicative (Fibonacci) hashing constant: `2^64 / phi`, odd.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

const EMPTY: u8 = 0;
const FULL: u8 = 1;
const TOMB: u8 = 2;

/// Minimum capacity (power of two).
const MIN_CAP: usize = 16;

/// An open-addressed, linear-probe hash map from `u64` to `V`.
///
/// # Examples
///
/// ```
/// use baryon_sim::flatmap::OpenMap;
///
/// let mut m: OpenMap<u32> = OpenMap::new();
/// m.insert(7, 1);
/// *m.entry_or_default(7) += 1;
/// assert_eq!(m.get(7), Some(&2));
/// assert_eq!(m.remove(7), Some(2));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct OpenMap<V> {
    ctrl: Vec<u8>,
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
    /// Occupied-or-tombstone slots (bounds the probe load factor).
    used: usize,
}

impl<V: Copy + Default> Default for OpenMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> OpenMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        OpenMap {
            ctrl: vec![EMPTY; MIN_CAP],
            keys: vec![0; MIN_CAP],
            vals: vec![V::default(); MIN_CAP],
            len: 0,
            used: 0,
        }
    }

    /// Creates an empty map that can hold `n` entries without resizing.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n * 8 / 7 + 1).next_power_of_two().max(MIN_CAP);
        OpenMap {
            ctrl: vec![EMPTY; cap],
            keys: vec![0; cap],
            vals: vec![V::default(); cap],
            len: 0,
            used: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn start_slot(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply spreads consecutive keys across the
        // table; the high bits index it (the table is a power of two).
        let h = key.wrapping_mul(FIB);
        (h >> (64 - self.ctrl.len().trailing_zeros())) as usize
    }

    /// Looks a key up.
    pub fn get(&self, key: u64) -> Option<&V> {
        let mask = self.ctrl.len() - 1;
        let mut i = self.start_slot(key);
        loop {
            match self.ctrl[i] {
                EMPTY => return None,
                FULL if self.keys[i] == key => return Some(&self.vals[i]),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Looks a key up, returning a copy (hot-path convenience).
    pub fn get_copied(&self, key: u64) -> Option<V> {
        self.get(key).copied()
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let mask = self.ctrl.len() - 1;
        let mut i = self.start_slot(key);
        loop {
            match self.ctrl[i] {
                EMPTY => return None,
                FULL if self.keys[i] == key => return Some(&mut self.vals[i]),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts or replaces, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.reserve_one();
        let mask = self.ctrl.len() - 1;
        let mut i = self.start_slot(key);
        let mut first_tomb = None;
        loop {
            match self.ctrl[i] {
                EMPTY => {
                    let slot = first_tomb.unwrap_or(i);
                    if first_tomb.is_none() {
                        self.used += 1;
                    }
                    self.ctrl[slot] = FULL;
                    self.keys[slot] = key;
                    self.vals[slot] = value;
                    self.len += 1;
                    return None;
                }
                FULL if self.keys[i] == key => {
                    return Some(std::mem::replace(&mut self.vals[i], value));
                }
                TOMB => {
                    first_tomb.get_or_insert(i);
                    i = (i + 1) & mask;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Returns a mutable reference to the key's value, inserting
    /// `V::default()` first if absent (the `HashMap::entry().or_default()`
    /// idiom, without the allocation-heavy entry machinery).
    pub fn entry_or_default(&mut self, key: u64) -> &mut V {
        if self.get(key).is_none() {
            self.insert(key, V::default());
        }
        self.get_mut(key).expect("just inserted")
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mask = self.ctrl.len() - 1;
        let mut i = self.start_slot(key);
        loop {
            match self.ctrl[i] {
                EMPTY => return None,
                FULL if self.keys[i] == key => {
                    self.ctrl[i] = TOMB;
                    self.len -= 1;
                    return Some(self.vals[i]);
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.ctrl.fill(EMPTY);
        self.len = 0;
        self.used = 0;
    }

    /// Iterates `(key, &value)` in table order (NOT sorted — sort before
    /// serializing).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.ctrl
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == FULL)
            .map(|(i, _)| (self.keys[i], &self.vals[i]))
    }

    /// Grows (or compacts tombstones) so one more slot is guaranteed.
    fn reserve_one(&mut self) {
        // Keep used (full + tombstone) slots under 7/8 so probes stay
        // short and always terminate on an EMPTY slot.
        if (self.used + 1) * 8 < self.ctrl.len() * 7 {
            return;
        }
        // Grow when genuinely full; rehash in place (dropping tombstones)
        // when churn, not growth, filled the table.
        let cap = if (self.len + 1) * 8 >= self.ctrl.len() * 7 {
            self.ctrl.len() * 2
        } else {
            self.ctrl.len()
        };
        let old_ctrl = std::mem::replace(&mut self.ctrl, vec![EMPTY; cap]);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![V::default(); cap]);
        self.len = 0;
        self.used = 0;
        let mask = cap - 1;
        for (i, c) in old_ctrl.into_iter().enumerate() {
            if c != FULL {
                continue;
            }
            // Fresh table has no tombstones: place at the first empty.
            let mut j = self.start_slot(old_keys[i]);
            while self.ctrl[j] == FULL {
                j = (j + 1) & mask;
            }
            self.ctrl[j] = FULL;
            self.keys[j] = old_keys[i];
            self.vals[j] = old_vals[i];
            self.len += 1;
            self.used += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: OpenMap<u64> = OpenMap::new();
        for k in 0..100u64 {
            assert_eq!(m.insert(k * 7, k), None);
        }
        assert_eq!(m.len(), 100);
        for k in 0..100u64 {
            assert_eq!(m.get(k * 7), Some(&k));
        }
        assert_eq!(m.get(1), None);
        for k in 0..50u64 {
            assert_eq!(m.remove(k * 7), Some(k));
        }
        assert_eq!(m.len(), 50);
        assert_eq!(m.remove(0), None);
        for k in 50..100u64 {
            assert_eq!(m.get(k * 7), Some(&k));
        }
    }

    #[test]
    fn replace_returns_old_value() {
        let mut m: OpenMap<u32> = OpenMap::new();
        assert_eq!(m.insert(3, 10), None);
        assert_eq!(m.insert(3, 20), Some(10));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(3), Some(&20));
    }

    #[test]
    fn entry_or_default_counts() {
        let mut m: OpenMap<u32> = OpenMap::new();
        for _ in 0..3 {
            *m.entry_or_default(9) += 1;
        }
        assert_eq!(m.get(9), Some(&3));
    }

    #[test]
    fn tombstone_churn_stays_bounded() {
        // Insert/remove the same keys far more times than the capacity:
        // tombstone rehashing must keep probes terminating.
        let mut m: OpenMap<u32> = OpenMap::new();
        for round in 0..1000u64 {
            m.insert(round % 8, round as u32);
            m.remove(round % 8);
        }
        assert!(m.is_empty());
        assert!(m.ctrl.len() <= 64, "churn must not grow the table");
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: OpenMap<u32> = OpenMap::with_capacity(4);
        for k in 0..10_000u64 {
            m.insert(k.wrapping_mul(0x1234_5678_9ABC_DEF1), k as u32);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(
                m.get(k.wrapping_mul(0x1234_5678_9ABC_DEF1)),
                Some(&(k as u32))
            );
        }
    }

    #[test]
    fn iter_yields_every_entry_once() {
        let mut m: OpenMap<u32> = OpenMap::new();
        for k in 0..500u64 {
            m.insert(k, (k * 2) as u32);
        }
        let mut seen: Vec<(u64, u32)> = m.iter().map(|(k, v)| (k, *v)).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 500);
        for (i, (k, v)) in seen.into_iter().enumerate() {
            assert_eq!((k, v), (i as u64, i as u32 * 2));
        }
    }

    #[test]
    fn zero_key_is_a_normal_key() {
        let mut m: OpenMap<u32> = OpenMap::new();
        m.insert(0, 42);
        assert_eq!(m.get(0), Some(&42));
        assert_eq!(m.remove(0), Some(42));
        assert_eq!(m.get(0), None);
    }
}

#![warn(missing_docs)]

//! Simulation kernel for the Baryon hybrid-memory reproduction.
//!
//! This crate holds the small, dependency-free building blocks shared by every
//! other crate in the workspace:
//!
//! * [`Cycle`] and time conversion helpers,
//! * a deterministic, splittable random number generator ([`rng::SimRng`]),
//! * a seeded fault-injecting file I/O layer ([`faultfs`]) the durability
//!   code (checkpoints, journals) routes through,
//! * a Zipfian sampler used by the YCSB-style workloads ([`zipf::Zipfian`]),
//! * the unified telemetry registry ([`telemetry::Registry`]) every
//!   component publishes counters, gauges and span timings into,
//! * summary helpers (geometric mean, percentiles) in [`summary`].
//!
//! # Examples
//!
//! ```
//! use baryon_sim::rng::SimRng;
//!
//! let mut rng = SimRng::from_seed(42);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//! // Deterministic: the same seed replays the same stream.
//! assert_eq!(SimRng::from_seed(42).next_u64(), a);
//! ```

pub mod check;
pub mod faultfs;
pub mod flatmap;
pub mod histogram;
pub mod json;
pub mod rng;
pub mod summary;
pub mod telemetry;
pub mod wire;
pub mod zipf;

/// A simulated clock cycle count.
///
/// All timing in the workspace is expressed in CPU cycles of the simulated
/// 3.2 GHz cores (Table I of the paper).
pub type Cycle = u64;

/// CPU frequency of the simulated cores in Hz (3.2 GHz, Table I).
pub const CPU_FREQ_HZ: u64 = 3_200_000_000;

/// Converts nanoseconds to CPU cycles, rounding up.
///
/// # Examples
///
/// ```
/// // 10 ns at 3.2 GHz is 32 cycles.
/// assert_eq!(baryon_sim::ns_to_cycles(10.0), 32);
/// ```
pub fn ns_to_cycles(ns: f64) -> Cycle {
    (ns * CPU_FREQ_HZ as f64 / 1e9).ceil() as Cycle
}

/// Converts CPU cycles back to nanoseconds.
///
/// # Examples
///
/// ```
/// let ns = baryon_sim::cycles_to_ns(32);
/// assert!((ns - 10.0).abs() < 1e-9);
/// ```
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 * 1e9 / CPU_FREQ_HZ as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_cycle_roundtrip() {
        for ns in [0.3125, 1.0, 10.0, 76.92, 230.77] {
            let c = ns_to_cycles(ns);
            let back = cycles_to_ns(c);
            // Round-up conversion never loses more than one cycle.
            assert!(back >= ns - 1e-9, "{back} < {ns}");
            assert!(back - ns < cycles_to_ns(1) + 1e-9);
        }
    }

    #[test]
    fn zero_is_zero() {
        assert_eq!(ns_to_cycles(0.0), 0);
        assert_eq!(cycles_to_ns(0), 0.0);
    }

    #[test]
    fn one_cycle_is_0_3125_ns() {
        assert!((cycles_to_ns(1) - 0.3125).abs() < 1e-12);
    }
}

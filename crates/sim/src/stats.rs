//! A lightweight hierarchical statistics registry.
//!
//! Every simulator component keeps its own strongly-typed stats struct, but we
//! also want a uniform way to dump "everything" into a table or CSV. [`Stats`]
//! is a flat ordered map of dotted counter names (`"llc.misses"`,
//! `"ctrl.fast.read_bytes"`) that components export into.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered collection of named counters and gauges.
///
/// # Examples
///
/// ```
/// use baryon_sim::stats::Stats;
///
/// let mut stats = Stats::new();
/// stats.add("mem.reads", 10);
/// stats.add("mem.reads", 5);
/// assert_eq!(stats.counter("mem.reads"), 15);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets the counter `name` to an absolute value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Sets a floating-point gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Reads a counter; missing counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge; missing gauges read as NaN.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(f64::NAN)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another registry into this one under a dotted prefix.
    ///
    /// # Examples
    ///
    /// ```
    /// use baryon_sim::stats::Stats;
    ///
    /// let mut inner = Stats::new();
    /// inner.add("hits", 3);
    /// let mut outer = Stats::new();
    /// outer.absorb("llc", &inner);
    /// assert_eq!(outer.counter("llc.hits"), 3);
    /// ```
    pub fn absorb(&mut self, prefix: &str, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(format!("{prefix}.{k}")).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(format!("{prefix}.{k}"), *v);
        }
    }

    /// True if no counters or gauges have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Renders as CSV lines `name,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,value\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("{k},{v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k},{v}\n"));
        }
        out
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no stats)");
        }
        for (k, v) in &self.counters {
            writeln!(f, "{k:<48} {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{k:<48} {v:.6}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut s = Stats::new();
        s.add("x", 1);
        s.add("x", 2);
        assert_eq!(s.counter("x"), 3);
    }

    #[test]
    fn missing_counter_is_zero() {
        assert_eq!(Stats::new().counter("nope"), 0);
    }

    #[test]
    fn missing_gauge_is_nan() {
        assert!(Stats::new().gauge("nope").is_nan());
    }

    #[test]
    fn set_counter_overwrites() {
        let mut s = Stats::new();
        s.add("x", 10);
        s.set_counter("x", 2);
        assert_eq!(s.counter("x"), 2);
    }

    #[test]
    fn absorb_prefixes_and_sums() {
        let mut inner = Stats::new();
        inner.add("a", 1);
        inner.set_gauge("g", 0.5);
        let mut outer = Stats::new();
        outer.absorb("p", &inner);
        outer.absorb("p", &inner);
        assert_eq!(outer.counter("p.a"), 2);
        assert_eq!(outer.gauge("p.g"), 0.5);
    }

    #[test]
    fn display_never_empty() {
        let s = Stats::new();
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn csv_contains_header_and_rows() {
        let mut s = Stats::new();
        s.add("a.b", 7);
        let csv = s.to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("a.b,7\n"));
    }

    #[test]
    fn counters_iterate_in_order() {
        let mut s = Stats::new();
        s.add("z", 1);
        s.add("a", 1);
        let names: Vec<&str> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "z"]);
    }
}

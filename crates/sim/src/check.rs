//! Deterministic, dependency-free property-based testing.
//!
//! This module replaces the external `proptest` crate with a small harness
//! built on the workspace's own xoshiro256++ [`SimRng`]: every generated
//! input is a pure function of a 64-bit seed, so failures reproduce
//! bit-for-bit on any machine. The design follows Hypothesis-style
//! *internal shrinking*: generators draw 64-bit choices from a recorded
//! stream, and shrinking minimises the recorded stream (deleting chunks,
//! binary-searching values toward zero) rather than the produced values —
//! which makes shrinking work through arbitrary `map`-like user code for
//! free.
//!
//! # Writing a property
//!
//! ```
//! use baryon_sim::check;
//!
//! check::props("addition_commutes").run(|g| {
//!     let a = g.range(0, 1000);
//!     let b = g.range(0, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Properties fail by panicking (plain `assert!`/`assert_eq!` work), and the
//! harness reports the reproducing seed plus the shrunk counterexample's
//! panic message and any [`Gen::note`] annotations.
//!
//! # Environment knobs
//!
//! * `BARYON_PROP_CASES` — cases per property (default
//!   [`DEFAULT_CASES`]; raise for deeper soak runs),
//! * `BARYON_PROP_SEED` — replay exactly one failing case by the seed
//!   printed in a failure report.

use crate::rng::{mix64, SimRng};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Default number of cases each property runs (overridable via
/// `BARYON_PROP_CASES`).
pub const DEFAULT_CASES: u64 = 64;

/// Default base seed for case derivation. Fixed so CI runs are identical
/// across machines and releases.
pub const DEFAULT_BASE_SEED: u64 = 0xBA21_0E5D_5EED_0001;

/// Cap on property executions spent shrinking one failure.
const SHRINK_BUDGET: usize = 4096;

/// The generator handed to properties: a recorded stream of 64-bit choices.
///
/// In generation mode choices come from a seeded [`SimRng`]; in replay mode
/// (during shrinking) they come from a candidate buffer, with exhausted
/// positions reading as zero. All derived values (`range`, `vec`, …) are
/// pure functions of the choice stream, which is what makes internal
/// shrinking sound.
pub struct Gen<'a> {
    rng: SimRng,
    replay: Option<&'a [u64]>,
    pos: usize,
    recorded: Vec<u64>,
    notes: Vec<String>,
}

impl<'a> Gen<'a> {
    fn from_seed(seed: u64) -> Gen<'static> {
        Gen {
            rng: SimRng::from_seed(seed),
            replay: None,
            pos: 0,
            recorded: Vec::new(),
            notes: Vec::new(),
        }
    }

    fn replaying(buf: &'a [u64]) -> Gen<'a> {
        Gen {
            rng: SimRng::from_seed(0),
            replay: Some(buf),
            pos: 0,
            recorded: Vec::new(),
            notes: Vec::new(),
        }
    }

    fn draw(&mut self) -> u64 {
        let c = match self.replay {
            Some(buf) => buf.get(self.pos).copied().unwrap_or(0),
            None => self.rng.next_u64(),
        };
        self.pos += 1;
        self.recorded.push(c);
        c
    }

    /// A full 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.draw()
    }

    /// A value in `[lo, hi)`.
    ///
    /// The mapping is `lo + choice % span`, so smaller recorded choices mean
    /// smaller values — the property the shrinker relies on.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range requires lo < hi, got [{lo}, {hi})");
        lo + self.draw() % (hi - lo)
    }

    /// A `usize` in `[lo, hi)`.
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// A uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        self.draw() as u8
    }

    /// A uniform `u16`.
    pub fn u16(&mut self) -> u16 {
        self.draw() as u16
    }

    /// A uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        self.draw() as u32
    }

    /// A boolean; shrinks toward `false`.
    pub fn bool(&mut self) -> bool {
        self.draw() & 1 == 1
    }

    /// A uniform `f64` in `[0, 1)`; shrinks toward `0.0`.
    pub fn f64(&mut self) -> f64 {
        (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An index into a choice of `n` alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn choice(&mut self, n: usize) -> usize {
        assert!(n > 0, "choice requires at least one alternative");
        self.usize_range(0, n)
    }

    /// A vector with a length drawn from `[min_len, max_len)` and elements
    /// from `f`. Shrinks by shortening the length and simplifying elements.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Self) -> T,
    ) -> Vec<T> {
        let n = self.usize_range(min_len, max_len);
        (0..n).map(|_| f(self)).collect()
    }

    /// Records a human-readable annotation (typically the generated input);
    /// notes from the final shrunk failing run are included in the report.
    pub fn note(&mut self, label: impl Into<String>) {
        self.notes.push(label.into());
    }
}

/// A failure report: everything needed to reproduce and understand one
/// falsified property.
#[derive(Debug, Clone)]
pub struct Report {
    /// Property name.
    pub name: String,
    /// The per-case seed; `BARYON_PROP_SEED=<seed>` replays it exactly.
    pub seed: u64,
    /// Which case (0-based) out of the configured count failed.
    pub case: u64,
    /// Panic message of the *shrunk* counterexample.
    pub message: String,
    /// [`Gen::note`] annotations from the shrunk failing run.
    pub notes: Vec<String>,
    /// The shrunk choice stream (diagnostic; length ~= input complexity).
    pub choices: Vec<u64>,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "property '{}' falsified (case {})", self.name, self.case)?;
        writeln!(
            f,
            "  reproduce with: BARYON_PROP_SEED={} (seed {:#x})",
            self.seed, self.seed
        )?;
        writeln!(
            f,
            "  shrunk counterexample ({} choices): {}",
            self.choices.len(),
            self.message
        )?;
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// A configured property runner; build with [`props`].
pub struct Checker {
    name: String,
    cases: u64,
    base_seed: u64,
    replay_seed: Option<u64>,
}

/// Starts a property check named `name`, reading `BARYON_PROP_CASES` and
/// `BARYON_PROP_SEED` from the environment.
pub fn props(name: &str) -> Checker {
    let cases = std::env::var("BARYON_PROP_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES);
    let replay_seed = std::env::var("BARYON_PROP_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    Checker {
        name: name.to_owned(),
        cases,
        base_seed: DEFAULT_BASE_SEED,
        replay_seed,
    }
}

impl Checker {
    /// Overrides the case count (the environment still wins; use this to
    /// *raise* coverage for cheap properties, never to drop below the
    /// default).
    pub fn cases(mut self, cases: u64) -> Self {
        if std::env::var("BARYON_PROP_CASES").is_err() {
            self.cases = cases.max(DEFAULT_CASES);
        }
        self
    }

    /// Overrides the base seed (rarely needed; distinct properties already
    /// derive distinct streams from their case indices).
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Runs the property over all cases, panicking with a full [`Report`]
    /// on the first (shrunk) failure.
    ///
    /// # Panics
    ///
    /// Panics if any case falsifies the property.
    pub fn run(self, prop: impl Fn(&mut Gen)) {
        if let Some(report) = self.run_report(prop) {
            panic!("{report}");
        }
    }

    /// Like [`Checker::run`] but returns the failure report instead of
    /// panicking — the hook the harness's own self-tests use.
    pub fn run_report(self, prop: impl Fn(&mut Gen)) -> Option<Report> {
        install_quiet_hook();
        if let Some(seed) = self.replay_seed {
            return self.check_seed(&prop, seed, 0);
        }
        for case in 0..self.cases {
            let seed = mix64(self.base_seed, case);
            if let Some(report) = self.check_seed(&prop, seed, case) {
                return Some(report);
            }
        }
        None
    }

    fn check_seed(&self, prop: &impl Fn(&mut Gen), seed: u64, case: u64) -> Option<Report> {
        let mut g = Gen::from_seed(seed);
        let outcome = run_case(prop, &mut g);
        let message = outcome.err()?;
        let (choices, message, notes) =
            shrink(prop, g.recorded, message, std::mem::take(&mut g.notes));
        Some(Report {
            name: self.name.clone(),
            seed,
            case,
            message,
            notes,
            choices,
        })
    }
}

/// Executes one property case, converting a panic into `Err(message)`.
fn run_case(prop: &impl Fn(&mut Gen), g: &mut Gen) -> Result<(), String> {
    QUIET.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(g)));
    QUIET.with(|q| q.set(false));
    result.map_err(|payload| payload_message(payload.as_ref()))
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Replays `candidate`; on failure returns the normalised choice stream
/// (only the draws actually consumed), the panic message, and the notes.
fn replay_fails(
    prop: &impl Fn(&mut Gen),
    candidate: &[u64],
) -> Option<(Vec<u64>, String, Vec<String>)> {
    let mut g = Gen::replaying(candidate);
    match run_case(prop, &mut g) {
        Ok(()) => None,
        Err(message) => Some((g.recorded, message, g.notes)),
    }
}

/// Shortlex order on choice streams: shorter wins, ties break
/// lexicographically. Accepting only strictly shortlex-smaller candidates
/// makes the greedy shrink well-founded (it cannot cycle or stall on a
/// candidate that normalises back to the current stream).
fn shortlex_less(a: &[u64], b: &[u64]) -> bool {
    a.len() < b.len() || (a.len() == b.len() && a < b)
}

/// Greedy shrink over the choice stream: chunk deletion, then per-element
/// binary search toward zero, repeated until a fixpoint (or budget).
fn shrink(
    prop: &impl Fn(&mut Gen),
    choices: Vec<u64>,
    message: String,
    notes: Vec<String>,
) -> (Vec<u64>, String, Vec<String>) {
    let mut best = (choices, message, notes);
    let mut budget = SHRINK_BUDGET;
    let mut improved = true;
    while improved && budget > 0 {
        improved = false;

        // Pass 1: delete chunks of choices (shortens vectors, drops ops).
        let mut chunk = (best.0.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i + chunk <= best.0.len() && budget > 0 {
                budget -= 1;
                let mut candidate = best.0.clone();
                candidate.drain(i..i + chunk);
                match replay_fails(prop, &candidate) {
                    Some(found) if shortlex_less(&found.0, &best.0) => {
                        best = found;
                        improved = true;
                        // The stream shrank; retry the same position.
                    }
                    _ => i += chunk,
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: minimise each choice value — zero first, then binary
        // search for the smallest still-failing value.
        let mut i = 0;
        while i < best.0.len() && budget > 0 {
            if best.0[i] == 0 {
                i += 1;
                continue;
            }
            budget -= 1;
            let mut candidate = best.0.clone();
            candidate[i] = 0;
            if let Some(found) = replay_fails(prop, &candidate) {
                if shortlex_less(&found.0, &best.0) {
                    best = found;
                    improved = true;
                    i += 1;
                    continue;
                }
            }
            // 0 passes (or didn't help); bisect the smallest failing value.
            let (mut lo, mut hi) = (0u64, best.0[i]);
            while lo + 1 < hi && budget > 0 && i < best.0.len() {
                budget -= 1;
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.0.clone();
                candidate[i] = mid;
                match replay_fails(prop, &candidate) {
                    Some(found) => {
                        hi = mid;
                        if shortlex_less(&found.0, &best.0) {
                            best = found;
                            improved = true;
                        }
                    }
                    None => lo = mid,
                }
            }
            i += 1;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Panic-noise suppression: shrinking executes hundreds of intentionally
// failing runs; a thread-local flag mutes the default hook for exactly the
// properties being executed, leaving every other thread's panics loud.

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_returns_no_report() {
        let report = props("tautology").run_report(|g| {
            let x = g.range(0, 100);
            assert!(x < 100);
        });
        assert!(report.is_none());
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        // `x < 10` is falsified by any x in [10, 1000); the minimal
        // counterexample is exactly 10.
        let report = props("bounded_failure")
            .run_report(|g| {
                let x = g.range(0, 1000);
                g.note(format!("x = {x}"));
                assert!(x < 10, "x = {x} escaped the bound");
            })
            .expect("property must fail");
        assert_eq!(report.choices, vec![10], "shrinker must reach the boundary");
        assert!(report.message.contains("x = 10"), "got: {}", report.message);
        assert_eq!(report.notes, vec!["x = 10".to_owned()]);
    }

    #[test]
    fn reported_seed_replays_the_failure() {
        let prop = |g: &mut Gen| {
            let v = g.vec(0, 50, |g| g.range(0, 100));
            assert!(v.iter().sum::<u64>() < 40);
        };
        let report = props("replayable").run_report(prop).expect("must fail");
        // Re-deriving a generator from the reported seed reproduces the
        // original (pre-shrink) failing case.
        let mut g = Gen::from_seed(report.seed);
        assert!(run_case(&prop, &mut g).is_err(), "seed must replay failure");
    }

    #[test]
    fn vectors_shrink_toward_short_and_small() {
        let report = props("vec_shrink")
            .run_report(|g| {
                let v = g.vec(0, 64, |g| g.range(0, 1000));
                assert!(v.iter().all(|&x| x < 500), "large element in {v:?}");
            })
            .expect("must fail");
        // Minimal counterexample: a single element equal to the boundary.
        // Choice stream: [length, element] = [1, 500].
        assert_eq!(report.choices, vec![1, 500]);
    }

    #[test]
    fn deterministic_across_runs() {
        let prop = |g: &mut Gen| {
            let x = g.u64();
            let v = g.vec(1, 9, |g| g.bool());
            g.note(format!("{x} {v:?}"));
            assert!(!x.is_multiple_of(7) || v.len() < 4);
        };
        let a = props("determinism").run_report(prop);
        let b = props("determinism").run_report(prop);
        match (a, b) {
            (None, None) => {}
            (Some(ra), Some(rb)) => {
                assert_eq!(ra.seed, rb.seed);
                assert_eq!(ra.choices, rb.choices);
                assert_eq!(ra.message, rb.message);
            }
            (a, b) => panic!("non-deterministic outcomes: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn range_and_choice_stay_in_bounds() {
        props("bounds").run(|g| {
            let lo = g.range(0, 50);
            let hi = lo + 1 + g.range(0, 50);
            let x = g.range(lo, hi);
            assert!((lo..hi).contains(&x));
            let i = g.choice(7);
            assert!(i < 7);
            let f = g.f64();
            assert!((0.0..1.0).contains(&f));
        });
    }

    #[test]
    fn report_display_names_the_seed() {
        let report = props("display")
            .run_report(|g| {
                let x = g.range(1, 100);
                assert_eq!(x, 0);
            })
            .expect("must fail");
        let text = report.to_string();
        assert!(text.contains("BARYON_PROP_SEED="), "missing seed: {text}");
        assert!(text.contains("display"), "missing name: {text}");
    }
}

//! Zipfian sampling for skewed workloads (YCSB, graph degree distributions).
//!
//! Uses the rejection-inversion method of Hörmann & Derflinger, the same
//! algorithm YCSB's own `ZipfianGenerator` approximates, so the key popularity
//! skew of the `ycsb-a`/`ycsb-b` workloads matches the real benchmark's shape.

use crate::rng::SimRng;

/// A Zipfian distribution over `0..n` with exponent `theta`.
///
/// Rank 0 is the most popular item. YCSB's default skew is `theta = 0.99`.
///
/// # Examples
///
/// ```
/// use baryon_sim::{rng::SimRng, zipf::Zipfian};
///
/// let zipf = Zipfian::new(1000, 0.99);
/// let mut rng = SimRng::from_seed(1);
/// let item = zipf.sample(&mut rng);
/// assert!(item < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

impl Zipfian {
    /// Creates a Zipfian distribution over `0..n` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1) ∪ (1, ∞)` (the classic
    /// harmonic case `theta == 1` is excluded; use e.g. `0.999`).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs at least one item");
        assert!(
            theta > 0.0 && (theta - 1.0).abs() > 1e-9,
            "theta must be positive and != 1, got {theta}"
        );
        let hi = |x: f64| h_integral_fn(x, theta);
        let h_integral_x1 = hi(1.5) - 1.0;
        Zipfian {
            n,
            theta,
            h_integral_x1,
            h_integral_n: hi(n as f64 + 0.5),
            s: 2.0 - h_integral_inverse_fn(hi(2.5) - h_fn(2.0, theta), theta),
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Samples a rank in `0..n`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            let u = self.h_integral_n + rng.gen_f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse_fn(u, self.theta);
            let mut k = (x + 0.5).floor();
            if k < 1.0 {
                k = 1.0;
            } else if k > self.n as f64 {
                k = self.n as f64;
            }
            if k - x <= self.s || u >= h_integral_fn(k + 0.5, self.theta) - h_fn(k, self.theta) {
                return k as u64 - 1;
            }
        }
    }
}

/// H(x) = integral of 1/x^theta.
fn h_integral_fn(x: f64, theta: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - theta) * log_x) * log_x
}

/// h(x) = 1/x^theta.
fn h_fn(x: f64, theta: f64) -> f64 {
    (-theta * x.ln()).exp()
}

/// Inverse of `h_integral_fn`.
fn h_integral_inverse_fn(x: f64, theta: f64) -> f64 {
    let mut t = x * (1.0 - theta);
    if t < -1.0 {
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// (exp(x) - 1) / x, stable near 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

/// ln(1 + x) / x, stable near 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let zipf = Zipfian::new(100, 0.99);
        let mut rng = SimRng::from_seed(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let zipf = Zipfian::new(1000, 0.99);
        let mut rng = SimRng::from_seed(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..200_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999] * 10);
    }

    #[test]
    fn skew_matches_zipf_law() {
        // P(rank 0) / P(rank 1) should be about 2^theta.
        let theta = 0.99;
        let zipf = Zipfian::new(10_000, theta);
        let mut rng = SimRng::from_seed(3);
        let (mut c0, mut c1) = (0u64, 0u64);
        for _ in 0..2_000_000 {
            match zipf.sample(&mut rng) {
                0 => c0 += 1,
                1 => c1 += 1,
                _ => {}
            }
        }
        let ratio = c0 as f64 / c1 as f64;
        let expect = 2f64.powf(theta);
        assert!(
            (ratio - expect).abs() / expect < 0.05,
            "ratio {ratio} expect {expect}"
        );
    }

    #[test]
    fn single_item_always_zero() {
        let zipf = Zipfian::new(1, 0.5);
        let mut rng = SimRng::from_seed(4);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        Zipfian::new(0, 0.99);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_one_panics() {
        Zipfian::new(10, 1.0);
    }

    #[test]
    fn heavy_skew_concentrates() {
        let zipf = Zipfian::new(1_000_000, 1.2);
        let mut rng = SimRng::from_seed(5);
        let top100 = (0..100_000).filter(|_| zipf.sample(&mut rng) < 100).count();
        // With theta > 1 most of the mass is on a handful of items.
        assert!(top100 > 50_000, "top100 draws: {top100}");
    }
}

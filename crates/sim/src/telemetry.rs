//! The unified telemetry registry shared by every crate in the workspace.
//!
//! The paper's evaluation hinges on per-mechanism accounting — stage hit
//! rates, remap-cache traffic, migration bytes — so every component publishes
//! into one [`Registry`] of dotted `component.metric` names instead of
//! keeping private ad-hoc stats structs. Three metric kinds cover everything
//! the workspace measures:
//!
//! * **counters** — monotonically accumulated `u64` event counts
//!   (`"ctrl.fast.read_bytes"`),
//! * **gauges** — point-in-time `f64` readings (`"ctrl.avg_cf"`),
//! * **summaries** — log2-bucketed [`Histogram`]s of sample distributions
//!   (`"sim.read_latency"`, span timings).
//!
//! # Spans
//!
//! Scoped spans measure wall-clock time through the hot paths (stage probe →
//! remap walk → fill/commit). They are **disabled by default** and become
//! no-ops that never read the clock, so telemetry-off runs are bit-identical
//! to a build without any instrumentation. When enabled, spans are
//! **sampled 1-in-[`SPAN_SAMPLE_PERIOD`]** (the first call always samples):
//! per-access paths run in a few hundred nanoseconds, so timing every call
//! would cost more than the work being measured. A span summary's `count`
//! is therefore the number of *samples*, while its mean and percentiles
//! remain representative of the full population.
//!
//! ```
//! use baryon_sim::telemetry::Registry;
//!
//! let mut reg = Registry::new();
//! let t = reg.timer();                 // spans disabled: no clock read
//! reg.record_span("ctrl.span.fill", t);
//! assert!(reg.is_empty());
//!
//! reg.enable_spans();
//! let t = reg.timer();
//! reg.record_span("ctrl.span.fill", t);
//! assert_eq!(reg.summary("ctrl.span.fill").unwrap().count(), 1);
//! ```
//!
//! # Reading the registry
//!
//! Callers never poke component fields directly; they take a
//! [`Registry::snapshot`], which freezes every metric into a
//! `BTreeMap<String, Value>`, or serialize with [`Registry::to_json`].

use crate::histogram::Histogram;
use crate::json::Json;
use crate::wire::{Reader, WireError, Writer};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Span sampling period: with spans enabled, one in this many
/// [`Registry::timer`] calls reads the clock and records a sample (the
/// first call always does). Sampling keeps the telemetry-on overhead on
/// per-access paths within the ~5% profiling budget.
pub const SPAN_SAMPLE_PERIOD: u64 = 64;

/// A frozen reading of one metric, produced by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A monotonically accumulated event count.
    Counter(u64),
    /// A point-in-time floating-point reading.
    Gauge(f64),
    /// A distribution summary (count, mean and tail percentiles).
    Summary {
        /// Number of recorded samples.
        count: u64,
        /// Arithmetic mean of all samples.
        mean: f64,
        /// 50th percentile (bucket lower bound).
        p50: u64,
        /// 90th percentile (bucket lower bound).
        p90: u64,
        /// 99th percentile (bucket lower bound).
        p99: u64,
    },
}

impl Value {
    /// Serializes the value; counters and gauges become bare numbers,
    /// summaries become an object.
    pub fn to_json(&self) -> Json {
        match self {
            Value::Counter(n) => Json::U64(*n),
            Value::Gauge(x) => Json::F64(*x),
            Value::Summary {
                count,
                mean,
                p50,
                p90,
                p99,
            } => Json::obj([
                ("count", Json::U64(*count)),
                ("mean", Json::F64(*mean)),
                ("p50", Json::U64(*p50)),
                ("p90", Json::U64(*p90)),
                ("p99", Json::U64(*p99)),
            ]),
        }
    }
}

/// Reads any JSON number as `f64` (whole-valued gauges render without a
/// fraction and parse back as integers).
fn num_f64(j: &Json) -> Option<f64> {
    match j {
        Json::U64(n) => Some(*n as f64),
        Json::I64(n) => Some(*n as f64),
        Json::F64(x) => Some(*x),
        // Non-finite gauges render as `null`.
        Json::Null => Some(f64::NAN),
        _ => None,
    }
}

fn num_u64(j: &Json) -> Option<u64> {
    match j {
        Json::U64(n) => Some(*n),
        _ => None,
    }
}

/// A started (or suppressed) span measurement, returned by
/// [`Registry::timer`] and consumed by [`Registry::record_span`].
///
/// Holding the clock reading in a token instead of an RAII guard keeps the
/// registry borrowable while the timed work runs.
#[derive(Debug)]
#[must_use = "pass the timer back to Registry::record_span"]
pub struct SpanTimer(Option<Instant>);

impl SpanTimer {
    /// A timer that records nothing, for paths without a registry at hand.
    pub fn disabled() -> Self {
        SpanTimer(None)
    }
}

/// The unified metric registry: ordered maps of counters, gauges and
/// histogram summaries under dotted `component.metric` names.
///
/// # Examples
///
/// ```
/// use baryon_sim::telemetry::{Registry, Value};
///
/// let mut reg = Registry::new();
/// reg.add("mem.reads", 10);
/// reg.add("mem.reads", 5);
/// reg.set_gauge("mem.util", 0.75);
/// assert_eq!(reg.counter("mem.reads"), 15);
/// assert_eq!(reg.snapshot()["mem.reads"], Value::Counter(15));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    spans_enabled: bool,
    /// Monotone tick deciding which [`Registry::timer`] calls sample; a
    /// `Cell` so `timer(&self)` stays a shared borrow while the timed
    /// work holds `&mut` elsewhere.
    span_tick: Cell<u64>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    summaries: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry with spans disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry with spans already enabled.
    pub fn with_spans() -> Self {
        let mut r = Self::new();
        r.enable_spans();
        r
    }

    /// Turns on wall-clock span recording. Off by default so golden runs
    /// never observe the host clock.
    pub fn enable_spans(&mut self) {
        self.spans_enabled = true;
    }

    /// Whether span timers are live.
    pub fn spans_enabled(&self) -> bool {
        self.spans_enabled
    }

    /// Adds `delta` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets the counter `name` to an absolute value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Sets a floating-point gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records one sample into the summary histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        // Allocation-free on the hot path: the name is only cloned the
        // first time a summary appears.
        match self.summaries.get_mut(name) {
            Some(h) => h.record(value),
            None => self
                .summaries
                .entry(name.to_owned())
                .or_default()
                .record(value),
        }
    }

    /// Merges a pre-built histogram into the summary `name`.
    pub fn observe_histogram(&mut self, name: &str, h: &Histogram) {
        self.summaries.entry(name.to_owned()).or_default().merge(h);
    }

    /// Reads a counter; missing counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge; missing gauges read as NaN.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(f64::NAN)
    }

    /// Borrows the summary histogram `name`, if any samples were recorded.
    pub fn summary(&self, name: &str) -> Option<&Histogram> {
        self.summaries.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates summaries in name order.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.summaries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Starts a span measurement. With spans disabled this never reads
    /// the clock (disabled runs stay bit-identical); with spans enabled,
    /// one in [`SPAN_SAMPLE_PERIOD`] calls samples, starting with the
    /// first.
    pub fn timer(&self) -> SpanTimer {
        if !self.spans_enabled {
            return SpanTimer(None);
        }
        let tick = self.span_tick.get();
        self.span_tick.set(tick.wrapping_add(1));
        SpanTimer(tick.is_multiple_of(SPAN_SAMPLE_PERIOD).then(Instant::now))
    }

    /// Starts an *unsampled* span measurement for coarse, rare events
    /// (run phases, whole jobs): every call samples when spans are
    /// enabled. Per-access paths should use [`Registry::timer`], which
    /// samples 1-in-[`SPAN_SAMPLE_PERIOD`] to bound overhead.
    pub fn phase_timer(&self) -> SpanTimer {
        SpanTimer(self.spans_enabled.then(Instant::now))
    }

    /// Finishes a span, recording its elapsed nanoseconds into the summary
    /// `name`. A timer from a spans-disabled registry records nothing.
    pub fn record_span(&mut self, name: &str, timer: SpanTimer) {
        if let Some(start) = timer.0 {
            self.observe(name, start.elapsed().as_nanos() as u64);
        }
    }

    /// Merges another registry into this one under a dotted prefix:
    /// counters sum, gauges overwrite, summaries merge.
    ///
    /// # Examples
    ///
    /// ```
    /// use baryon_sim::telemetry::Registry;
    ///
    /// let mut inner = Registry::new();
    /// inner.add("hits", 3);
    /// let mut outer = Registry::new();
    /// outer.absorb("llc", &inner);
    /// assert_eq!(outer.counter("llc.hits"), 3);
    /// ```
    pub fn absorb(&mut self, prefix: &str, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(format!("{prefix}.{k}")).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(format!("{prefix}.{k}"), *v);
        }
        for (k, h) in &other.summaries {
            self.summaries
                .entry(format!("{prefix}.{k}"))
                .or_default()
                .merge(h);
        }
    }

    /// Merges another registry into this one with names unchanged.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.summaries {
            self.summaries.entry(k.clone()).or_default().merge(h);
        }
    }

    /// True if no metrics have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.summaries.is_empty()
    }

    /// Clears every metric and rewinds the span sampling tick; the spans
    /// flag is preserved.
    pub fn reset(&mut self) {
        self.span_tick.set(0);
        self.counters.clear();
        self.gauges.clear();
        self.summaries.clear();
    }

    /// Freezes the registry into the single read API: one ordered map of
    /// metric name to [`Value`].
    pub fn snapshot(&self) -> BTreeMap<String, Value> {
        let mut out = BTreeMap::new();
        for (k, v) in &self.counters {
            out.insert(k.clone(), Value::Counter(*v));
        }
        for (k, v) in &self.gauges {
            out.insert(k.clone(), Value::Gauge(*v));
        }
        for (k, h) in &self.summaries {
            out.insert(
                k.clone(),
                Value::Summary {
                    count: h.count(),
                    mean: h.mean(),
                    p50: h.percentile(50.0),
                    p90: h.percentile(90.0),
                    p99: h.percentile(99.0),
                },
            );
        }
        out
    }

    /// Serializes the registry as three sections, each an ordered object:
    /// `{"counters": {...}, "gauges": {...}, "summaries": {...}}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::U64(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::F64(*v)))
                .collect(),
        );
        let summaries = Json::Obj(
            self.summaries
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Value::Summary {
                            count: h.count(),
                            mean: h.mean(),
                            p50: h.percentile(50.0),
                            p90: h.percentile(90.0),
                            p99: h.percentile(99.0),
                        }
                        .to_json(),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("summaries", summaries),
        ])
    }

    /// Rebuilds a snapshot from the JSON produced by [`Registry::to_json`].
    /// Returns `None` on any shape mismatch. Together with `json::parse`
    /// this gives the round-trip `snapshot_from_json(parse(render(to_json())))
    /// == snapshot()`.
    pub fn snapshot_from_json(doc: &Json) -> Option<BTreeMap<String, Value>> {
        let Json::Obj(sections) = doc else {
            return None;
        };
        let section = |name: &str| -> Option<&Vec<(String, Json)>> {
            match &sections.iter().find(|(k, _)| k == name)?.1 {
                Json::Obj(pairs) => Some(pairs),
                _ => None,
            }
        };
        let mut out = BTreeMap::new();
        for (k, v) in section("counters")? {
            out.insert(k.clone(), Value::Counter(num_u64(v)?));
        }
        for (k, v) in section("gauges")? {
            out.insert(k.clone(), Value::Gauge(num_f64(v)?));
        }
        for (k, v) in section("summaries")? {
            let Json::Obj(fields) = v else {
                return None;
            };
            let field = |name: &str| -> Option<&Json> {
                fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
            };
            out.insert(
                k.clone(),
                Value::Summary {
                    count: num_u64(field("count")?)?,
                    mean: num_f64(field("mean")?)?,
                    p50: num_u64(field("p50")?)?,
                    p90: num_u64(field("p90")?)?,
                    p99: num_u64(field("p99")?)?,
                },
            );
        }
        Some(out)
    }

    /// Serializes the complete registry state — including the spans flag
    /// and the span sampling tick, so a restored run samples the same
    /// timer calls the uninterrupted run would have.
    pub fn save_state(&self, w: &mut Writer) {
        w.bool(self.spans_enabled);
        w.u64(self.span_tick.get());
        w.seq(self.counters.len());
        for (k, v) in &self.counters {
            w.str(k);
            w.u64(*v);
        }
        w.seq(self.gauges.len());
        for (k, v) in &self.gauges {
            w.str(k);
            w.f64(*v);
        }
        w.seq(self.summaries.len());
        for (k, h) in &self.summaries {
            w.str(k);
            h.save_state(w);
        }
    }

    /// Rebuilds a registry from [`Registry::save_state`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated or malformed payload.
    pub fn load_state(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let spans_enabled = r.bool()?;
        let span_tick = Cell::new(r.u64()?);
        let mut counters = BTreeMap::new();
        for _ in 0..r.seq()? {
            let k = r.str()?;
            counters.insert(k, r.u64()?);
        }
        let mut gauges = BTreeMap::new();
        for _ in 0..r.seq()? {
            let k = r.str()?;
            gauges.insert(k, r.f64()?);
        }
        let mut summaries = BTreeMap::new();
        for _ in 0..r.seq()? {
            let k = r.str()?;
            summaries.insert(k, Histogram::load_state(r)?);
        }
        Ok(Registry {
            spans_enabled,
            span_tick,
            counters,
            gauges,
            summaries,
        })
    }

    /// Renders as CSV lines `name,value` (summaries export their count).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,value\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("{k},{v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k},{v}\n"));
        }
        for (k, h) in &self.summaries {
            out.push_str(&format!("{k}.count,{}\n", h.count()));
            out.push_str(&format!("{k}.p50,{}\n", h.percentile(50.0)));
            out.push_str(&format!("{k}.p99,{}\n", h.percentile(99.0)));
        }
        out
    }
}

impl fmt::Display for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no telemetry)");
        }
        for (k, v) in &self.counters {
            writeln!(f, "{k:<48} {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{k:<48} {v:.6}")?;
        }
        for (k, h) in &self.summaries {
            writeln!(
                f,
                "{k:<48} n={} mean={:.1} p50={} p99={}",
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(99.0)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn add_accumulates() {
        let mut r = Registry::new();
        r.add("x", 1);
        r.add("x", 2);
        assert_eq!(r.counter("x"), 3);
    }

    #[test]
    fn missing_counter_is_zero() {
        assert_eq!(Registry::new().counter("nope"), 0);
    }

    #[test]
    fn missing_gauge_is_nan() {
        assert!(Registry::new().gauge("nope").is_nan());
    }

    #[test]
    fn set_counter_overwrites() {
        let mut r = Registry::new();
        r.add("x", 10);
        r.set_counter("x", 2);
        assert_eq!(r.counter("x"), 2);
    }

    #[test]
    fn absorb_prefixes_sums_and_merges() {
        let mut inner = Registry::new();
        inner.add("a", 1);
        inner.set_gauge("g", 0.5);
        inner.observe("h", 100);
        let mut outer = Registry::new();
        outer.absorb("p", &inner);
        outer.absorb("p", &inner);
        assert_eq!(outer.counter("p.a"), 2);
        assert_eq!(outer.gauge("p.g"), 0.5);
        assert_eq!(outer.summary("p.h").unwrap().count(), 2);
    }

    #[test]
    fn disabled_spans_record_nothing_and_never_read_the_clock() {
        let mut r = Registry::new();
        let t = r.timer();
        r.record_span("span.x", t);
        assert!(r.is_empty());
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn enabled_spans_record_elapsed_ns() {
        let mut r = Registry::with_spans();
        let t = r.timer();
        std::hint::black_box(0u64);
        r.record_span("span.x", t);
        let h = r.summary("span.x").unwrap();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn spans_sample_one_in_period() {
        let mut r = Registry::with_spans();
        for _ in 0..(2 * SPAN_SAMPLE_PERIOD) {
            let t = r.timer();
            r.record_span("span.x", t);
        }
        assert_eq!(r.summary("span.x").unwrap().count(), 2);
        // Reset rewinds the tick, so the next timer samples again.
        r.reset();
        let t = r.timer();
        r.record_span("span.x", t);
        assert_eq!(r.summary("span.x").unwrap().count(), 1);
    }

    #[test]
    fn snapshot_orders_and_types_metrics() {
        let mut r = Registry::new();
        r.add("b.count", 2);
        r.set_gauge("a.rate", 1.5);
        r.observe("c.lat", 7);
        let snap = r.snapshot();
        let keys: Vec<&str> = snap.keys().map(|k| k.as_str()).collect();
        assert_eq!(keys, ["a.rate", "b.count", "c.lat"]);
        assert_eq!(snap["b.count"], Value::Counter(2));
        assert_eq!(snap["a.rate"], Value::Gauge(1.5));
        let Value::Summary { count, p50, .. } = snap["c.lat"] else {
            panic!("c.lat should be a summary");
        };
        assert_eq!((count, p50), (1, 4));
    }

    #[test]
    fn json_round_trip_reconstructs_snapshot() {
        let mut r = Registry::new();
        r.add("ctrl.reads", 41);
        r.set_gauge("ctrl.cf", 2.0); // renders as "2", parses as U64
        r.set_gauge("ctrl.rate", 0.25);
        r.observe("sim.lat", 12);
        r.observe("sim.lat", 900);
        let doc = parse(&r.to_json().render()).expect("registry JSON parses");
        assert_eq!(Registry::snapshot_from_json(&doc), Some(r.snapshot()));
    }

    #[test]
    fn wire_state_round_trip_is_exact() {
        let mut r = Registry::with_spans();
        r.add("ctrl.reads", 41);
        r.set_gauge("ctrl.cf", 2.5);
        r.observe("sim.lat", 12);
        r.observe("sim.lat", 900);
        let t = r.timer();
        r.record_span("span.x", t);
        let mut w = crate::wire::Writer::new();
        r.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut rd = crate::wire::Reader::new(&bytes);
        let back = Registry::load_state(&mut rd).expect("round trip");
        rd.finish().expect("no trailing bytes");
        assert_eq!(back.spans_enabled(), r.spans_enabled());
        assert_eq!(back.span_tick.get(), r.span_tick.get());
        assert_eq!(back.counters, r.counters);
        assert_eq!(back.summaries, r.summaries);
        assert_eq!(back.gauges.len(), r.gauges.len());
    }

    #[test]
    fn reset_clears_but_keeps_span_flag() {
        let mut r = Registry::with_spans();
        r.add("x", 1);
        r.reset();
        assert!(r.is_empty());
        assert!(r.spans_enabled());
    }

    #[test]
    fn csv_and_display_cover_all_sections() {
        let mut r = Registry::new();
        r.add("a", 7);
        r.set_gauge("g", 0.5);
        r.observe("s", 3);
        let csv = r.to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("a,7\n"));
        assert!(csv.contains("s.count,1\n"));
        let text = format!("{r}");
        assert!(text.contains('a') && text.contains("n=1"));
        assert!(!format!("{}", Registry::new()).is_empty());
    }
}

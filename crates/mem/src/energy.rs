//! Energy accounting per Table I of the paper.

use crate::config::DeviceConfig;
use crate::device::DeviceStats;

/// Charges energy into a [`DeviceStats`] according to a device's per-bit and
/// per-activation costs.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyMeter {
    read_pj_per_bit: f64,
    write_pj_per_bit: f64,
    act_pre_pj: f64,
}

impl EnergyMeter {
    /// Builds a meter from a device configuration.
    pub fn new(cfg: &DeviceConfig) -> Self {
        EnergyMeter {
            read_pj_per_bit: cfg.read_pj_per_bit,
            write_pj_per_bit: cfg.write_pj_per_bit,
            act_pre_pj: cfg.act_pre_pj,
        }
    }

    /// Charges a data transfer of `bytes` bytes.
    pub fn charge_transfer(&self, stats: &mut DeviceStats, bytes: u64, is_write: bool) {
        let pj_per_bit = if is_write {
            self.write_pj_per_bit
        } else {
            self.read_pj_per_bit
        };
        stats.energy_pj += bytes as f64 * 8.0 * pj_per_bit;
    }

    /// Charges one activate + precharge pair.
    pub fn charge_act_pre(&self, stats: &mut DeviceStats) {
        stats.energy_pj += self.act_pre_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_transfer_energy() {
        let m = EnergyMeter::new(&DeviceConfig::ddr4_3200());
        let mut s = DeviceStats::default();
        m.charge_transfer(&mut s, 64, false);
        assert!((s.energy_pj - 64.0 * 8.0 * 5.0).abs() < 1e-9);
    }

    #[test]
    fn act_pre_energy() {
        let m = EnergyMeter::new(&DeviceConfig::ddr4_3200());
        let mut s = DeviceStats::default();
        m.charge_act_pre(&mut s);
        assert!((s.energy_pj - 535.8).abs() < 1e-9);
    }

    #[test]
    fn nvm_write_energy_higher() {
        let m = EnergyMeter::new(&DeviceConfig::nvm());
        let mut r = DeviceStats::default();
        let mut w = DeviceStats::default();
        m.charge_transfer(&mut r, 64, false);
        m.charge_transfer(&mut w, 64, true);
        assert!(w.energy_pj > r.energy_pj);
    }
}

//! The banked memory device model.

use crate::config::DeviceConfig;
use crate::energy::EnergyMeter;
use crate::fault::{FaultConfig, FaultInjector, FaultKind};
use baryon_sim::telemetry::Registry;
use baryon_sim::wire::{Reader, WireError, Writer};
use baryon_sim::Cycle;

/// Aggregate statistics of one device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Bytes moved by reads.
    pub read_bytes: u64,
    /// Bytes moved by writes.
    pub written_bytes: u64,
    /// Row-buffer hits (devices with `miss_penalty > 0` only).
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
    /// Total cycles the channel buses were busy (occupancy).
    pub bus_busy_cycles: u64,
    /// Total energy consumed, picojoules.
    pub energy_pj: f64,
    /// Reads that observed an injected transient (bit-flip) fault.
    pub faults_transient: u64,
    /// Reads that observed an injected stuck-at fault.
    pub faults_stuck: u64,
}

impl DeviceStats {
    /// Total bytes moved in either direction. Saturates rather than
    /// wrapping: with hostile byte counts the totals pin at `u64::MAX`
    /// instead of silently overflowing in release builds.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes.saturating_add(self.written_bytes)
    }

    /// Total injected faults observed by reads, either kind.
    pub fn faults_injected(&self) -> u64 {
        self.faults_transient.saturating_add(self.faults_stuck)
    }

    /// Publishes into the unified telemetry [`Registry`].
    pub fn export(&self, reg: &mut Registry) {
        reg.set_counter("reads", self.reads);
        reg.set_counter("writes", self.writes);
        reg.set_counter("read_bytes", self.read_bytes);
        reg.set_counter("written_bytes", self.written_bytes);
        reg.set_counter("row_hits", self.row_hits);
        reg.set_counter("row_misses", self.row_misses);
        reg.set_counter("bus_busy_cycles", self.bus_busy_cycles);
        reg.set_counter("faults_transient", self.faults_transient);
        reg.set_counter("faults_stuck", self.faults_stuck);
        reg.set_gauge("energy_pj", self.energy_pj);
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    free_at: Cycle,
}

/// A banked, multi-channel memory device with row-buffer timing.
///
/// Addresses are *device* addresses (bytes). Channel interleaving is at 256 B
/// granularity (one Baryon sub-block) and banks are selected by row index,
/// which spreads consecutive rows across banks.
///
/// # Examples
///
/// ```
/// use baryon_mem::{DeviceConfig, MemDevice};
///
/// let mut nvm = MemDevice::new(DeviceConfig::nvm());
/// let t_read = nvm.access(0, 4096, 64, false);
/// let t_write = nvm.access(0, 8192, 64, true);
/// assert!(t_write > t_read, "NVM writes are slower than reads");
/// ```
#[derive(Debug, Clone)]
pub struct MemDevice {
    cfg: DeviceConfig,
    banks: Vec<Bank>,
    channel_free: Vec<Cycle>,
    stats: DeviceStats,
    meter: EnergyMeter,
    fault: Option<FaultInjector>,
}

/// The result of one device access: the completion cycle plus any fault
/// the transfer observed (always `None` on writes and on devices without
/// an installed [`FaultInjector`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the transfer completes.
    pub done: Cycle,
    /// Injected fault observed by the read, if any.
    pub fault: Option<FaultKind>,
}

/// Interleave granularity across channels (one sub-block).
const CHANNEL_INTERLEAVE_BYTES: u64 = 256;

impl MemDevice {
    /// Creates a device from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`DeviceConfig::validate`]).
    pub fn new(cfg: DeviceConfig) -> Self {
        cfg.validate().expect("invalid device config");
        let banks = vec![Bank::default(); cfg.total_banks()];
        let channel_free = vec![0; cfg.channels];
        let meter = EnergyMeter::new(&cfg);
        MemDevice {
            cfg,
            banks,
            channel_free,
            stats: DeviceStats::default(),
            meter,
            fault: None,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Installs (or, with a disabled config, removes) a fault injector
    /// layered under the read path.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FaultConfig::validate`]).
    pub fn set_fault_injector(&mut self, cfg: FaultConfig) {
        self.fault = cfg.enabled().then(|| FaultInjector::new(cfg));
    }

    /// The installed fault injector's configuration, if any.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.fault.as_ref().map(FaultInjector::config)
    }

    /// True when the 64 B line at `addr` is permanently stuck under the
    /// installed injector.
    pub fn line_is_stuck(&self, addr: u64) -> bool {
        self.fault.as_ref().is_some_and(|f| f.line_is_stuck(addr))
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Resets statistics (used after warm-up) without touching bank state.
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    fn channel_of(&self, addr: u64) -> usize {
        ((addr / CHANNEL_INTERLEAVE_BYTES) % self.cfg.channels as u64) as usize
    }

    fn bank_of(&self, addr: u64) -> (usize, u64) {
        let row = addr / self.cfg.row_bytes;
        let banks_per_channel = self.cfg.ranks * self.cfg.banks_per_rank;
        let channel = self.channel_of(addr);
        let bank_in_channel = (row % banks_per_channel as u64) as usize;
        let bank_row = row / banks_per_channel as u64;
        (channel * banks_per_channel + bank_in_channel, bank_row)
    }

    /// Performs one access of `bytes` bytes starting at `addr` and returns
    /// the completion cycle.
    ///
    /// The request occupies the channel for the full transfer and the bank
    /// for the access latency; multi-burst transfers (e.g. a 2 kB block
    /// migration) are charged one row activation per touched row.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn access(&mut self, now: Cycle, addr: u64, bytes: usize, is_write: bool) -> Cycle {
        self.access_outcome(now, addr, bytes, is_write).done
    }

    /// [`MemDevice::access`], but also reporting any injected fault the
    /// read observed. Callers on integrity-checked paths use this form;
    /// plain `access` discards the flag (latent faults a real system
    /// would only notice at the next end-to-end check).
    ///
    /// Timing arithmetic saturates: hostile byte counts pin cycle and
    /// byte totals at their maxima instead of wrapping in release builds.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn access_outcome(
        &mut self,
        now: Cycle,
        addr: u64,
        bytes: usize,
        is_write: bool,
    ) -> AccessOutcome {
        assert!(bytes > 0, "zero-byte access");
        let (bank_idx, row) = self.bank_of(addr);
        let channel = self.channel_of(addr);

        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.free_at).max(self.channel_free[channel]);

        // Row-buffer behaviour: only meaningful when miss_penalty > 0.
        let row_hit = self.cfg.miss_penalty == 0 || bank.open_row == Some(row);
        let access_latency = if row_hit {
            self.stats.row_hits += 1;
            self.cfg.hit_latency
        } else {
            self.stats.row_misses += 1;
            self.meter.charge_act_pre(&mut self.stats);
            self.cfg.hit_latency + self.cfg.miss_penalty
        };
        if self.cfg.miss_penalty > 0 {
            bank.open_row = Some(row);
        }

        let bursts = (bytes as u64).div_ceil(64);
        // Extra rows touched by a long transfer each cost an activation.
        let last_byte = addr.saturating_add(bytes as u64 - 1);
        let extra_rows = last_byte / self.cfg.row_bytes - addr / self.cfg.row_bytes;
        let extra_row_latency = extra_rows.saturating_mul(if self.cfg.miss_penalty > 0 {
            self.cfg.miss_penalty
        } else {
            0
        });
        for _ in 0..extra_rows {
            self.meter.charge_act_pre(&mut self.stats);
        }

        let write_extra = if is_write { self.cfg.write_extra } else { 0 };
        let transfer = bursts.saturating_mul(self.cfg.burst_cycles);
        let busy = start
            .saturating_add(access_latency)
            .saturating_add(write_extra)
            .saturating_add(transfer);
        let done = busy.saturating_add(extra_row_latency);

        // Bank busy until the access completes; channel busy for the burst.
        self.banks[bank_idx].free_at = done;
        self.channel_free[channel] = busy;
        self.stats.bus_busy_cycles = self.stats.bus_busy_cycles.saturating_add(transfer);

        if is_write {
            self.stats.writes += 1;
            self.stats.written_bytes = self.stats.written_bytes.saturating_add(bytes as u64);
        } else {
            self.stats.reads += 1;
            self.stats.read_bytes = self.stats.read_bytes.saturating_add(bytes as u64);
        }
        self.meter
            .charge_transfer(&mut self.stats, bytes as u64, is_write);

        let fault = match (&mut self.fault, is_write) {
            (Some(injector), false) => {
                let fault = injector.observe_read(addr, bytes);
                match fault {
                    Some(FaultKind::Transient) => self.stats.faults_transient += 1,
                    Some(FaultKind::Stuck) => self.stats.faults_stuck += 1,
                    None => {}
                }
                fault
            }
            _ => None,
        };

        AccessOutcome { done, fault }
    }

    /// The latency an isolated 64 B read would observe on an idle device
    /// with an open row (the best case), useful for calibration/tests.
    pub fn unloaded_read_latency(&self) -> Cycle {
        self.cfg.hit_latency + self.cfg.burst_cycles
    }

    /// Serializes the mutable device state: bank rows, channel timing,
    /// statistics, and the fault injector's transient RNG stream. The
    /// configuration (and with it the energy meter and the injector's
    /// stuck set, both pure functions of it) is rebuilt by the caller.
    pub fn save_state(&self, w: &mut Writer) {
        w.seq(self.banks.len());
        for b in &self.banks {
            w.opt(b.open_row.is_some());
            if let Some(row) = b.open_row {
                w.u64(row);
            }
            w.u64(b.free_at);
        }
        w.seq(self.channel_free.len());
        for c in &self.channel_free {
            w.u64(*c);
        }
        w.u64(self.stats.reads);
        w.u64(self.stats.writes);
        w.u64(self.stats.read_bytes);
        w.u64(self.stats.written_bytes);
        w.u64(self.stats.row_hits);
        w.u64(self.stats.row_misses);
        w.u64(self.stats.bus_busy_cycles);
        w.f64(self.stats.energy_pj);
        w.u64(self.stats.faults_transient);
        w.u64(self.stats.faults_stuck);
        w.opt(self.fault.is_some());
        if let Some(f) = &self.fault {
            for word in f.rng_state() {
                w.u64(word);
            }
        }
    }

    /// Overlays checkpointed state onto this (freshly constructed) device.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a truncated payload or a geometry/fault
    /// mismatch against this device's configuration.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let n = r.seq()?;
        if n != self.banks.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for b in &mut self.banks {
            b.open_row = if r.opt()? { Some(r.u64()?) } else { None };
            b.free_at = r.u64()?;
        }
        let n = r.seq()?;
        if n != self.channel_free.len() {
            return Err(WireError::BadLength(n as u64));
        }
        for c in &mut self.channel_free {
            *c = r.u64()?;
        }
        self.stats.reads = r.u64()?;
        self.stats.writes = r.u64()?;
        self.stats.read_bytes = r.u64()?;
        self.stats.written_bytes = r.u64()?;
        self.stats.row_hits = r.u64()?;
        self.stats.row_misses = r.u64()?;
        self.stats.bus_busy_cycles = r.u64()?;
        self.stats.energy_pj = r.f64()?;
        self.stats.faults_transient = r.u64()?;
        self.stats.faults_stuck = r.u64()?;
        let has_fault = r.opt()?;
        if has_fault != self.fault.is_some() {
            return Err(WireError::BadTag(has_fault as u8));
        }
        if let Some(f) = &mut self.fault {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = r.u64()?;
            }
            f.restore_rng(s);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> MemDevice {
        MemDevice::new(DeviceConfig::ddr4_3200())
    }

    fn nvm() -> MemDevice {
        MemDevice::new(DeviceConfig::nvm())
    }

    #[test]
    fn read_completes_after_now() {
        let mut d = dram();
        assert!(d.access(100, 0, 64, false) > 100);
    }

    #[test]
    fn row_hit_faster_than_miss() {
        let mut d = dram();
        let first = d.access(0, 0, 64, false); // cold: row miss
        let second_start = first + 1000;
        let second = d.access(second_start, 64, 64, false) - second_start;
        assert!(
            second < first,
            "row hit ({second}) should beat miss ({first})"
        );
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let d = dram();
        let banks_per_channel = (d.config().ranks * d.config().banks_per_rank) as u64;
        // Two addresses in the same channel whose rows map to the same bank.
        let a = 0u64;
        let b = a + d.config().row_bytes * banks_per_channel * d.config().channels as u64;
        let mut d = dram();
        let (bank_a, row_a) = d.bank_of(a);
        let (bank_b, row_b) = d.bank_of(b);
        assert_eq!(bank_a, bank_b);
        assert_ne!(row_a, row_b);
        d.access(0, a, 64, false);
        let t = d.access(0, b, 64, false);
        // Second access waits for the first and pays a row miss.
        assert!(t > d.unloaded_read_latency() * 2);
    }

    #[test]
    fn nvm_write_slower_than_read() {
        let mut d = nvm();
        let r = d.access(0, 0, 64, false);
        let w = d.access(r + 100, 1 << 20, 64, true) - (r + 100);
        assert!(w > r, "write {w} read {r}");
    }

    #[test]
    fn nvm_has_flat_latency() {
        let mut d = nvm();
        let t1 = d.access(0, 0, 64, false);
        let start = t1 + 10_000;
        let t2 = d.access(start, 64, 64, false) - start;
        assert_eq!(t1, t2, "no row-buffer benefit in the NVM model");
    }

    #[test]
    fn big_transfer_takes_longer() {
        let mut d = dram();
        let small = d.access(0, 0, 64, false);
        let mut d = dram();
        let big = d.access(0, 0, 2048, false);
        assert!(big > small);
        assert_eq!(d.stats().read_bytes, 2048);
    }

    #[test]
    fn channel_parallelism() {
        // Same cycle, different channels: both see unloaded latency.
        let mut d = dram();
        let t0 = d.access(0, 0, 64, false);
        let t1 = d.access(0, 256, 64, false); // next channel
        assert_eq!(t0, t1);
    }

    #[test]
    fn same_channel_serializes_bursts() {
        let mut d = dram();
        let t0 = d.access(0, 0, 64, false);
        // Same channel (offset 1024 = channel 0 again with 4 channels)
        let t1 = d.access(0, 1024 * d.config().channels as u64, 64, false);
        assert!(
            t1 >= t0,
            "second access on busy channel cannot finish earlier"
        );
    }

    #[test]
    fn energy_accumulates() {
        let mut d = nvm();
        d.access(0, 0, 64, false);
        let after_read = d.stats().energy_pj;
        assert!((after_read - 64.0 * 8.0 * 14.0).abs() < 1e-6);
        d.access(1000, 0, 64, true);
        assert!((d.stats().energy_pj - after_read - 64.0 * 8.0 * 21.0).abs() < 1e-6);
    }

    #[test]
    fn stats_reset_keeps_bank_state() {
        let mut d = dram();
        d.access(0, 0, 64, false);
        d.reset_stats();
        assert_eq!(d.stats().reads, 0);
        // Row stays open: next access to same row is a hit.
        let start = 100_000;
        d.access(start, 0, 64, false);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 0);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_bytes_panics() {
        dram().access(0, 0, 0, false);
    }

    #[test]
    fn export_contains_all_fields() {
        let mut d = dram();
        d.access(0, 0, 64, true);
        let mut s = Registry::new();
        d.stats().export(&mut s);
        assert_eq!(s.counter("writes"), 1);
        assert_eq!(s.counter("written_bytes"), 64);
        assert_eq!(s.counter("faults_transient"), 0);
        assert_eq!(s.counter("faults_stuck"), 0);
        assert!(s.gauge("energy_pj") > 0.0);
    }

    #[test]
    fn hostile_byte_counts_saturate_instead_of_overflowing() {
        let mut d = dram();
        // Two near-maximal transfers: totals pin at u64::MAX, timing
        // stays monotone, and nothing wraps or panics.
        let first = d.access(0, u64::MAX - 64, usize::MAX, false);
        let done = d.access(0, u64::MAX - 64, usize::MAX, true);
        assert_eq!(d.stats().total_bytes(), u64::MAX);
        assert!(done >= first, "saturating timing stays monotone");
        let s = DeviceStats {
            read_bytes: u64::MAX,
            written_bytes: 1,
            ..Default::default()
        };
        assert_eq!(s.total_bytes(), u64::MAX);
    }

    #[test]
    fn injected_faults_surface_through_access_outcome() {
        let mut d = dram();
        d.set_fault_injector(crate::fault::FaultConfig {
            bit_flip_rate: 0.05,
            stuck_at_rate: 0.0,
            seed: 9,
        });
        let mut observed = 0u64;
        for i in 0..2_000u64 {
            let out = d.access_outcome(0, i * 64, 64, false);
            observed += u64::from(out.fault.is_some());
            // Writes never report faults.
            assert_eq!(d.access_outcome(0, i * 64, 64, true).fault, None);
        }
        assert!(observed > 0, "5%/bit must fault within 2000 reads");
        assert_eq!(d.stats().faults_injected(), observed);
        assert_eq!(d.stats().faults_stuck, 0);
    }

    #[test]
    fn disabled_injector_adds_no_drift() {
        let mut plain = dram();
        let mut with_disabled = dram();
        with_disabled.set_fault_injector(crate::fault::FaultConfig::default());
        for i in 0..500u64 {
            let a = plain.access(i, i * 128, 256, i % 3 == 0);
            let out = with_disabled.access_outcome(i, i * 128, 256, i % 3 == 0);
            assert_eq!(a, out.done);
            assert_eq!(out.fault, None);
        }
        assert_eq!(plain.stats(), with_disabled.stats());
    }
}

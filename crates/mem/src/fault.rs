//! Seeded, deterministic fault injection for memory devices.
//!
//! Real hybrid-memory parts are not perfectly reliable: NVM in particular
//! has a non-trivial raw bit error rate, and DRAM rows develop stuck
//! cells. The simulator models two fault classes:
//!
//! * **transient** faults — bit flips during a transfer. Re-reading the
//!   same location returns clean data; a retry or a re-fetch from the
//!   redundant copy corrects them.
//! * **stuck-at** faults — permanently bad 64 B lines. The *same* device
//!   line faults on every read, so the only recovery is to stop using the
//!   location (or the copy stored there).
//!
//! Both are driven by the in-repo deterministic RNG so a run is exactly
//! reproducible from `FaultConfig::seed`: transient draws come from a
//! [`SimRng`] stream advanced once per injected read, and stuck lines are
//! a pure hash of the line address (`mix64(seed, line)`), which makes the
//! stuck set a property of the seed rather than of access order.
//!
//! The injector only *flags* faulting accesses — [`crate::MemDevice`] is
//! a timing model and holds no data bytes, so corruption is represented
//! as "this read observed a fault" and the controller above decides what
//! that means for the data it believes lives there.

use baryon_sim::rng::{mix64, SimRng};

/// Bits in one device line, the granularity at which stuck cells are
/// tracked (64 B, one cacheline burst).
const LINE_BYTES: u64 = 64;
const LINE_BITS: i32 = (LINE_BYTES * 8) as i32;

/// Per-device fault-injection rates. The default is fully disabled and
/// adds zero behavioural drift: no RNG is consumed and no extra work is
/// done on the access path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-bit probability that a transferred bit flips in transit.
    pub bit_flip_rate: f64,
    /// Per-bit probability that a bit belongs to a permanently stuck
    /// line. Expanded to a per-64 B-line probability internally.
    pub stuck_at_rate: f64,
    /// Seed for the transient draw stream and the stuck-line hash.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            bit_flip_rate: 0.0,
            stuck_at_rate: 0.0,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// True when either fault class can fire.
    pub fn enabled(&self) -> bool {
        self.bit_flip_rate > 0.0 || self.stuck_at_rate > 0.0
    }

    /// Validates the rates.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field when a rate is not a
    /// probability in `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("bit_flip_rate", self.bit_flip_rate),
            ("stuck_at_rate", self.stuck_at_rate),
        ] {
            if !(0.0..1.0).contains(&rate) {
                return Err(format!("{name} must be in [0, 1), got {rate}"));
            }
        }
        Ok(())
    }
}

/// The class of fault a read observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transfer error; the stored data is fine and a retry succeeds.
    Transient,
    /// The location itself is bad; every read of it faults.
    Stuck,
}

/// The deterministic fault source layered under a device's read path.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: SimRng,
    /// Salt for the stuck-line hash, derived from the seed but distinct
    /// from the transient stream.
    stuck_salt: u64,
    /// Pre-expanded per-line stuck probability mapped onto the 53-bit
    /// uniform hash range (compare once per line, no float math per read).
    stuck_threshold: u64,
}

/// Converts a per-bit rate to a per-`bits` event probability.
fn per_access_probability(per_bit: f64, bits: i32) -> f64 {
    1.0 - (1.0 - per_bit).powi(bits)
}

impl FaultInjector {
    /// Creates an injector from validated rates.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FaultConfig::validate`]).
    pub fn new(cfg: FaultConfig) -> Self {
        cfg.validate().expect("invalid fault config");
        let per_line = per_access_probability(cfg.stuck_at_rate, LINE_BITS);
        // Same mapping gen_f64 uses: 53 high bits over [0, 1).
        let stuck_threshold = (per_line * (1u64 << 53) as f64) as u64;
        FaultInjector {
            cfg,
            rng: SimRng::from_seed(cfg.seed ^ 0x00FA_017F_A017),
            stuck_salt: mix64(cfg.seed, 0x57_0C_4A_11),
            stuck_threshold,
        }
    }

    /// The configured rates.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The transient-draw stream's raw RNG state, for checkpointing. The
    /// stuck set is a pure hash of the seed and needs no state.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rewinds the transient-draw stream to a checkpointed
    /// [`FaultInjector::rng_state`].
    pub fn restore_rng(&mut self, s: [u64; 4]) {
        self.rng = SimRng::from_state(s);
    }

    /// True when the 64 B line holding `addr` is permanently stuck. Pure
    /// in the address: repeated queries always agree.
    pub fn line_is_stuck(&self, addr: u64) -> bool {
        if self.stuck_threshold == 0 {
            return false;
        }
        let line = addr / LINE_BYTES;
        (mix64(self.stuck_salt, line) >> 11) < self.stuck_threshold
    }

    /// Draws the fault (if any) observed by a read of `bytes` bytes at
    /// `addr`. Stuck lines dominate transient flips: if the read touches
    /// a stuck line the outcome is [`FaultKind::Stuck`] regardless of the
    /// transient draw, and no transient randomness is consumed (keeping
    /// stuck-line reads deterministic in isolation).
    pub fn observe_read(&mut self, addr: u64, bytes: usize) -> Option<FaultKind> {
        let first = addr / LINE_BYTES;
        let last = addr.saturating_add(bytes.saturating_sub(1) as u64) / LINE_BYTES;
        for line in first..=last {
            if self.line_is_stuck(line * LINE_BYTES) {
                return Some(FaultKind::Stuck);
            }
        }
        if self.cfg.bit_flip_rate > 0.0 {
            let bits = (bytes as u64).saturating_mul(8).min(i32::MAX as u64) as i32;
            if self
                .rng
                .gen_bool(per_access_probability(self.cfg.bit_flip_rate, bits))
            {
                return Some(FaultKind::Transient);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aggressive() -> FaultConfig {
        FaultConfig {
            bit_flip_rate: 1e-3,
            stuck_at_rate: 1e-4,
            seed: 42,
        }
    }

    #[test]
    fn default_is_disabled() {
        assert!(!FaultConfig::default().enabled());
        assert!(FaultConfig::default().validate().is_ok());
    }

    #[test]
    fn rates_outside_unit_interval_rejected() {
        for bad in [-0.1, 1.0, 2.0, f64::NAN] {
            let cfg = FaultConfig {
                bit_flip_rate: bad,
                ..FaultConfig::default()
            };
            assert!(cfg.validate().is_err(), "rate {bad} should be rejected");
        }
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let mut a = FaultInjector::new(aggressive());
        let mut b = FaultInjector::new(aggressive());
        for i in 0..10_000u64 {
            assert_eq!(
                a.observe_read(i * 64, 64),
                b.observe_read(i * 64, 64),
                "diverged at access {i}"
            );
        }
    }

    #[test]
    fn stuck_lines_are_stable_per_address() {
        let inj = FaultInjector::new(FaultConfig {
            stuck_at_rate: 1e-3,
            ..FaultConfig::default()
        });
        let stuck: Vec<u64> = (0..100_000u64)
            .map(|l| l * 64)
            .filter(|a| inj.line_is_stuck(*a))
            .collect();
        assert!(!stuck.is_empty(), "1e-3/bit should mark some lines stuck");
        let mut inj2 = FaultInjector::new(FaultConfig {
            stuck_at_rate: 1e-3,
            ..FaultConfig::default()
        });
        for a in &stuck {
            assert!(inj.line_is_stuck(*a));
            assert_eq!(inj2.observe_read(*a, 64), Some(FaultKind::Stuck));
        }
    }

    #[test]
    fn transient_rate_tracks_configuration() {
        let mut inj = FaultInjector::new(FaultConfig {
            bit_flip_rate: 1e-4,
            ..FaultConfig::default()
        });
        let trials = 50_000;
        let mut hits = 0u64;
        for i in 0..trials {
            if inj.observe_read(i * 64, 64).is_some() {
                hits += 1;
            }
        }
        // p(64 B read faults) = 1 - (1 - 1e-4)^512 ≈ 0.0499.
        let observed = hits as f64 / trials as f64;
        assert!(
            (observed - 0.0499).abs() < 0.01,
            "observed transient rate {observed} far from expected 0.0499"
        );
    }

    #[test]
    fn disabled_injector_never_faults() {
        let mut inj = FaultInjector::new(FaultConfig::default());
        for i in 0..10_000u64 {
            assert_eq!(inj.observe_read(i * 64, 2048), None);
        }
    }

    #[test]
    fn long_reads_fault_more_often_than_short() {
        let cfg = FaultConfig {
            bit_flip_rate: 1e-4,
            ..FaultConfig::default()
        };
        let mut short = FaultInjector::new(cfg);
        let mut long = FaultInjector::new(cfg);
        let trials = 20_000;
        let (mut s, mut l) = (0u64, 0u64);
        for i in 0..trials {
            s += u64::from(short.observe_read(i * 64, 64).is_some());
            l += u64::from(long.observe_read(i * 64, 2048).is_some());
        }
        assert!(l > s, "2 kB reads ({l}) should fault more than 64 B ({s})");
    }
}

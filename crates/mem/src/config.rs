//! Device configuration presets matching Table I of the paper.

use baryon_sim::ns_to_cycles;
use baryon_sim::Cycle;

/// Timing and energy parameters of one memory device (all timing in CPU
/// cycles of the 3.2 GHz cores).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable name used in stats output.
    pub name: String,
    /// Number of independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
    /// Column access latency on a row hit.
    pub hit_latency: Cycle,
    /// Extra latency on a row miss (precharge + activate), added to
    /// `hit_latency`. Zero for devices without a row buffer benefit.
    pub miss_penalty: Cycle,
    /// Additional latency for writes over reads (e.g. NVM write asymmetry).
    pub write_extra: Cycle,
    /// Channel bus time to move one 64 B burst.
    pub burst_cycles: Cycle,
    /// Read energy in pJ per bit moved.
    pub read_pj_per_bit: f64,
    /// Write energy in pJ per bit moved.
    pub write_pj_per_bit: f64,
    /// Activate + precharge energy in pJ per row-buffer miss.
    pub act_pre_pj: f64,
}

impl DeviceConfig {
    /// DDR4-3200, 4 channels, 2 ranks, 16 banks, 22-22-22 (Table I).
    ///
    /// At 3200 MT/s the DRAM clock is 1600 MHz (tCK = 0.625 ns):
    /// tCAS = tRCD = tRP = 22 tCK = 13.75 ns. A 64 B burst on a 64-bit
    /// channel takes 4 tCK = 2.5 ns.
    pub fn ddr4_3200() -> Self {
        DeviceConfig {
            name: "ddr4-3200".to_owned(),
            channels: 4,
            ranks: 2,
            banks_per_rank: 16,
            row_bytes: 2048,
            hit_latency: ns_to_cycles(13.75),
            miss_penalty: ns_to_cycles(13.75 * 2.0),
            write_extra: 0,
            burst_cycles: ns_to_cycles(2.5),
            read_pj_per_bit: 5.0,
            write_pj_per_bit: 5.0,
            act_pre_pj: 535.8,
        }
    }

    /// The paper's NVM: 1333 MHz, 4 channels, 1 rank, 8 banks,
    /// 76.92 ns read / 230.77 ns write, 14 / 21 pJ/bit (Table I).
    ///
    /// Modelled without a row-buffer benefit (flat access latency); a 64 B
    /// burst at 1333 MT/s × 8 B is 6.0 ns.
    pub fn nvm() -> Self {
        DeviceConfig {
            name: "nvm".to_owned(),
            channels: 4,
            ranks: 1,
            banks_per_rank: 8,
            row_bytes: 2048,
            hit_latency: ns_to_cycles(76.92),
            miss_penalty: 0,
            write_extra: ns_to_cycles(230.77 - 76.92),
            burst_cycles: ns_to_cycles(6.0),
            read_pj_per_bit: 14.0,
            write_pj_per_bit: 21.0,
            act_pre_pj: 0.0,
        }
    }

    /// Total number of banks across all channels and ranks.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks_per_rank
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.ranks == 0 || self.banks_per_rank == 0 {
            return Err(format!(
                "{}: channel/rank/bank counts must be non-zero",
                self.name
            ));
        }
        if !self.row_bytes.is_power_of_two() || self.row_bytes < 64 {
            return Err(format!(
                "{}: row_bytes must be a power of two >= 64, got {}",
                self.name, self.row_bytes
            ));
        }
        if self.burst_cycles == 0 {
            return Err(format!("{}: burst_cycles must be non-zero", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        DeviceConfig::ddr4_3200().validate().expect("ddr4 valid");
        DeviceConfig::nvm().validate().expect("nvm valid");
    }

    #[test]
    fn table1_bank_counts() {
        assert_eq!(DeviceConfig::ddr4_3200().total_banks(), 4 * 2 * 16);
        assert_eq!(DeviceConfig::nvm().total_banks(), 4 * 8);
    }

    #[test]
    fn nvm_is_slower_than_dram() {
        let dram = DeviceConfig::ddr4_3200();
        let nvm = DeviceConfig::nvm();
        assert!(nvm.hit_latency > dram.hit_latency + dram.miss_penalty);
        assert!(nvm.write_extra > 0);
        assert!(nvm.burst_cycles > dram.burst_cycles);
    }

    #[test]
    fn nvm_read_latency_matches_paper() {
        // 76.92 ns at 3.2 GHz ≈ 247 cycles.
        let nvm = DeviceConfig::nvm();
        assert_eq!(nvm.hit_latency, 247);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = DeviceConfig::ddr4_3200();
        c.channels = 0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::ddr4_3200();
        c.row_bytes = 100;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::nvm();
        c.burst_cycles = 0;
        assert!(c.validate().is_err());
    }
}

#![warn(missing_docs)]

//! Memory-device timing and energy models.
//!
//! The Baryon paper (Table I) evaluates a hybrid memory built from:
//!
//! * **fast memory**: DDR4-3200, 4 channels × 2 ranks × 16 banks,
//!   RCD-CAS-RP = 22-22-22, 5.0 pJ/bit read/write, 535.8 pJ activate+precharge;
//! * **slow memory**: an NVM at 1333 MHz, 4 channels × 1 rank × 8 banks,
//!   76.92 ns reads (14 pJ/bit), 230.77 ns writes (21 pJ/bit).
//!
//! [`MemDevice`] models either device with per-bank row-buffer state and
//! per-channel bus occupancy. It is not a full DDR command scheduler — the
//! simulator issues one request at a time per device and the model charges
//! queueing as `max(now, bank_free, channel_free)` — but it reproduces the
//! latency, bandwidth and energy asymmetries the paper's results depend on.
//!
//! # Examples
//!
//! ```
//! use baryon_mem::{DeviceConfig, MemDevice};
//!
//! let mut dram = MemDevice::new(DeviceConfig::ddr4_3200());
//! let done = dram.access(0, 0x1000, 64, false);
//! assert!(done > 0);
//! let stats = dram.stats();
//! assert_eq!(stats.read_bytes, 64);
//! ```

pub mod config;
pub mod device;
pub mod energy;
pub mod fault;
pub mod frfcfs;

pub use config::DeviceConfig;
pub use device::{AccessOutcome, DeviceStats, MemDevice};
pub use fault::{FaultConfig, FaultInjector, FaultKind};

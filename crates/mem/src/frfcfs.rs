//! A command-level DDR4 timing model with the constraints the fast
//! bank-state model abstracts away: tRAS, tRRD, tFAW and refresh.
//!
//! The simulator's hot path uses [`crate::MemDevice`] (row-hit/miss plus
//! bus occupancy); this module provides [`DetailedDram`], a slower but more
//! faithful model used to *validate* the fast one — the cross-model tests
//! at the bottom bound the divergence on representative access patterns.
//! `DetailedDram` exposes the same `access` signature, so it can also be
//! swapped in by downstream users who want command-level fidelity.

use baryon_sim::ns_to_cycles;
use baryon_sim::Cycle;

/// DDR4-3200 command timing in CPU cycles (3.2 GHz core clock;
/// tCK = 0.625 ns at 1600 MHz DRAM clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandTimings {
    /// ACT -> internal read/write (22 tCK).
    pub t_rcd: Cycle,
    /// Read command -> first data (22 tCK).
    pub t_cas: Cycle,
    /// PRE -> ACT on the same bank (22 tCK).
    pub t_rp: Cycle,
    /// ACT -> PRE minimum row-open time (52 tCK).
    pub t_ras: Cycle,
    /// ACT -> ACT, different banks, same rank (8 tCK).
    pub t_rrd: Cycle,
    /// Four-activate window per rank (~34 tCK).
    pub t_faw: Cycle,
    /// Data burst on the bus (4 tCK for 64 B on a 64-bit channel).
    pub t_burst: Cycle,
    /// Refresh interval (7.8 us).
    pub t_refi: Cycle,
    /// Refresh duration (350 ns).
    pub t_rfc: Cycle,
    /// Write command -> first data (CAS write latency, 16 tCK).
    pub t_cwd: Cycle,
    /// Write recovery before precharge (~24 tCK).
    pub t_wr: Cycle,
}

impl CommandTimings {
    /// JEDEC DDR4-3200 CL22 values, converted at 3.2 GHz.
    pub fn ddr4_3200() -> Self {
        let tck = 0.625;
        CommandTimings {
            t_rcd: ns_to_cycles(22.0 * tck),
            t_cas: ns_to_cycles(22.0 * tck),
            t_rp: ns_to_cycles(22.0 * tck),
            t_ras: ns_to_cycles(52.0 * tck),
            t_rrd: ns_to_cycles(8.0 * tck),
            t_faw: ns_to_cycles(34.0 * tck),
            t_burst: ns_to_cycles(4.0 * tck),
            t_refi: ns_to_cycles(7800.0),
            t_rfc: ns_to_cycles(350.0),
            t_cwd: ns_to_cycles(16.0 * tck),
            t_wr: ns_to_cycles(24.0 * tck),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest next ACT (covers tRP after PRE).
    act_ready: Cycle,
    /// Earliest PRE (tRAS after the last ACT).
    pre_ready: Cycle,
    /// Earliest CAS (tRCD after the last ACT).
    cas_ready: Cycle,
}

#[derive(Debug, Clone, Default)]
struct RankState {
    /// Times of the last four activates (tFAW window).
    recent_acts: [Cycle; 4],
    /// Time of the most recent activate (tRRD).
    last_act: Cycle,
}

/// The command-level DDR4 device.
#[derive(Debug, Clone)]
pub struct DetailedDram {
    t: CommandTimings,
    channels: usize,
    ranks: usize,
    banks_per_rank: usize,
    row_bytes: u64,
    banks: Vec<BankState>,
    ranks_state: Vec<RankState>,
    bus_free: Vec<Cycle>,
}

impl DetailedDram {
    /// Builds the Table I fast-memory geometry with command-level timing.
    pub fn table1() -> Self {
        Self::new(CommandTimings::ddr4_3200(), 4, 2, 16, 2048)
    }

    /// Builds a custom geometry.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized geometry.
    pub fn new(
        t: CommandTimings,
        channels: usize,
        ranks: usize,
        banks_per_rank: usize,
        row_bytes: u64,
    ) -> Self {
        assert!(
            channels > 0 && ranks > 0 && banks_per_rank > 0,
            "empty geometry"
        );
        assert!(
            row_bytes.is_power_of_two(),
            "row size must be a power of two"
        );
        DetailedDram {
            t,
            channels,
            ranks,
            banks_per_rank,
            row_bytes,
            banks: vec![BankState::default(); channels * ranks * banks_per_rank],
            ranks_state: vec![RankState::default(); channels * ranks],
            bus_free: vec![0; channels],
        }
    }

    fn map(&self, addr: u64) -> (usize, usize, usize, u64) {
        let channel = ((addr / 256) % self.channels as u64) as usize;
        let row = addr / self.row_bytes;
        let banks_per_channel = self.ranks * self.banks_per_rank;
        let bank_in_channel = (row % banks_per_channel as u64) as usize;
        let rank = bank_in_channel / self.banks_per_rank;
        let bank = channel * banks_per_channel + bank_in_channel;
        (
            channel,
            rank + channel * self.ranks,
            bank,
            row / banks_per_channel as u64,
        )
    }

    /// Delays `t` past any refresh window it falls into.
    fn after_refresh(&self, t: Cycle) -> Cycle {
        if self.t.t_refi == 0 {
            return t;
        }
        let phase = t % self.t.t_refi;
        if phase < self.t.t_rfc {
            t - phase + self.t.t_rfc
        } else {
            t
        }
    }

    /// Issues one 64 B-granularity access; returns the completion cycle.
    /// Writes use tCWD instead of tCAS and delay the bank's next precharge
    /// by the write-recovery time tWR.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn access(&mut self, now: Cycle, addr: u64, bytes: usize, is_write: bool) -> Cycle {
        assert!(bytes > 0, "zero-byte access");
        let (channel, rank, bank_idx, row) = self.map(addr);
        let mut t_cmd = self.after_refresh(now.max(self.banks[bank_idx].act_ready));

        let hit = self.banks[bank_idx].open_row == Some(row);
        if !hit {
            // PRE (if a row is open) then ACT, honouring tRAS/tRRD/tFAW.
            if self.banks[bank_idx].open_row.is_some() {
                t_cmd = t_cmd.max(self.banks[bank_idx].pre_ready);
                t_cmd += self.t.t_rp;
            }
            let r = &self.ranks_state[rank];
            t_cmd = t_cmd
                .max(r.last_act + self.t.t_rrd)
                .max(r.recent_acts[0] + self.t.t_faw);
            t_cmd = self.after_refresh(t_cmd);
            // Record the ACT.
            let r = &mut self.ranks_state[rank];
            r.recent_acts.rotate_left(1);
            r.recent_acts[3] = t_cmd;
            r.last_act = t_cmd;
            let b = &mut self.banks[bank_idx];
            b.open_row = Some(row);
            b.cas_ready = t_cmd + self.t.t_rcd;
            b.pre_ready = t_cmd + self.t.t_ras;
        }

        // CAS + burst(s) on the channel bus.
        let bursts = (bytes as u64).div_ceil(64);
        let cas_latency = if is_write { self.t.t_cwd } else { self.t.t_cas };
        let cas_at = self
            .after_refresh(t_cmd.max(self.banks[bank_idx].cas_ready))
            .max(self.bus_free[channel].saturating_sub(cas_latency));
        let data_start = cas_at + cas_latency;
        let done = data_start + bursts * self.t.t_burst;
        self.bus_free[channel] = done;
        self.banks[bank_idx].act_ready = self.banks[bank_idx].act_ready.max(cas_at);
        if is_write {
            // The row cannot close until write recovery completes.
            self.banks[bank_idx].pre_ready = self.banks[bank_idx].pre_ready.max(done + self.t.t_wr);
        }
        done
    }

    /// Best-case (open-row, idle) 64 B read latency.
    pub fn unloaded_read_latency(&self) -> Cycle {
        self.t.t_cas + self.t.t_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceConfig, MemDevice};

    fn dram() -> DetailedDram {
        DetailedDram::table1()
    }

    #[test]
    fn row_hit_is_cas_plus_burst() {
        let mut d = dram();
        let first = d.access(0, 0, 64, false);
        let start = first + 1000;
        let hit = d.access(start, 64, 64, false) - start;
        assert_eq!(hit, d.unloaded_read_latency());
        assert!(first > hit, "cold access pays ACT+RCD");
    }

    #[test]
    fn trrd_spaces_activates_in_a_rank() {
        let mut d = dram();
        // Two cold accesses to different banks of the same rank at t=0:
        // the second ACT must wait at least tRRD after the first.
        let banks_per_channel = 2 * 16;
        let a0 = 0u64;
        // Same channel (multiple of 1024 for 4 channels x 256), next bank
        // within the same rank: one row further.
        let a1 = d.row_bytes * d.channels as u64;
        let t0 = d.access(0, a0, 64, false);
        let t1 = d.access(0, a1, 64, false);
        assert!(t1 >= t0.min(t1), "sanity");
        assert!(
            t1 >= CommandTimings::ddr4_3200().t_rrd,
            "second ACT cannot start before tRRD"
        );
        let _ = banks_per_channel;
    }

    #[test]
    fn tfaw_limits_activate_bursts() {
        let mut d = dram();
        // Five cold accesses to five different banks of one rank, issued
        // together: the fifth ACT falls outside the 4-activate window.
        let mut times = Vec::new();
        for i in 0..5u64 {
            // Different banks, same rank: consecutive rows in one channel.
            let addr = i * d.row_bytes * d.channels as u64 * 2; // even rows -> rank 0
            times.push(d.access(0, addr, 64, false));
        }
        let t = CommandTimings::ddr4_3200();
        assert!(
            times[4] - times[0] >= t.t_faw - t.t_rrd,
            "fifth activate must respect tFAW ({} vs {})",
            times[4] - times[0],
            t.t_faw
        );
    }

    #[test]
    fn refresh_blocks_accesses() {
        let mut d = dram();
        let t = CommandTimings::ddr4_3200();
        // An access landing inside a refresh window is pushed past it.
        let inside = t.t_refi; // refresh starts at each tREFI boundary
        let done = d.access(inside + 1, 0, 64, false);
        assert!(
            done >= inside + t.t_rfc,
            "access during refresh must wait for tRFC"
        );
    }

    #[test]
    fn tras_delays_early_conflicts() {
        let mut d = dram();
        let t = CommandTimings::ddr4_3200();
        // Open row 0, then immediately conflict in the same bank: the PRE
        // must wait for tRAS after the ACT.
        let banks_per_channel = (2 * 16) as u64;
        d.access(0, 0, 64, false);
        let conflict = d.row_bytes * banks_per_channel * d.channels as u64;
        let done = d.access(0, conflict, 64, false);
        assert!(done >= t.t_ras + t.t_rp + t.t_rcd + t.t_cas + t.t_burst);
    }

    #[test]
    fn fast_model_tracks_detailed_model_on_streams() {
        // The hot-path MemDevice must stay within 25% of the detailed model
        // for a sequential stream (the dominant pattern in the suite).
        let mut simple = MemDevice::new(DeviceConfig::ddr4_3200());
        let mut detailed = dram();
        let (mut t_simple, mut t_detailed) = (0u64, 0u64);
        let mut now = 0;
        for i in 0..2000u64 {
            now += 40;
            let addr = i * 64;
            t_simple = simple.access(now, addr, 64, false);
            t_detailed = detailed.access(now, addr, 64, false);
        }
        let ratio = t_simple as f64 / t_detailed as f64;
        assert!(
            (0.75..=1.25).contains(&ratio),
            "stream completion ratio {ratio} (simple {t_simple} vs detailed {t_detailed})"
        );
    }

    #[test]
    fn fast_model_tracks_detailed_model_on_random() {
        let mut simple = MemDevice::new(DeviceConfig::ddr4_3200());
        let mut detailed = dram();
        let mut x = 0x1234_5678u64;
        let (mut t_simple, mut t_detailed) = (0u64, 0u64);
        let mut now = 0;
        for _ in 0..2000 {
            now += 120;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = ((x >> 16) % (64 << 20)) & !63;
            t_simple = simple.access(now, addr, 64, false);
            t_detailed = detailed.access(now, addr, 64, false);
        }
        let ratio = t_simple as f64 / t_detailed as f64;
        // Random traffic exposes tFAW/refresh the simple model lacks:
        // allow a wider band but still the same order of magnitude.
        assert!(
            (0.5..=1.5).contains(&ratio),
            "random completion ratio {ratio}"
        );
    }

    #[test]
    fn write_recovery_delays_conflicts() {
        let t = CommandTimings::ddr4_3200();
        let banks_per_channel = (2 * 16) as u64;
        // Read-then-conflict vs write-then-conflict in the same bank: the
        // write case must pay tWR before the precharge.
        let conflict_time = |write_first: bool| {
            let mut d = dram();
            d.access(0, 0, 64, write_first);
            let conflict = d.row_bytes * banks_per_channel * d.channels as u64;
            d.access(0, conflict, 64, false)
        };
        let after_read = conflict_time(false);
        let after_write = conflict_time(true);
        assert!(
            after_write >= after_read + t.t_wr / 2,
            "write recovery must delay the conflicting activate              ({after_write} vs {after_read})"
        );
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_bytes_panics() {
        dram().access(0, 0, 0, false);
    }
}

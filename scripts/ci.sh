#!/usr/bin/env sh
# Tier-1 gate for the Baryon reproduction.
#
# The workspace is hermetic: it has zero external dependencies, so every
# step below runs with `--offline` and must succeed on a machine with no
# network and an empty crates.io cache. Adding a dependency that breaks
# this is a build regression.
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --workspace --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

# The full suite above already covers baryon-serve, but the serving
# contract is important enough to gate on explicitly: an ephemeral-port
# server must accept a job, backpressure a burst, and return results
# byte-identical to a direct in-process run.
echo "==> baryon-serve end-to-end smoke"
cargo test -q -p baryon-serve --offline --test e2e

# Chaos gate: the controller under aggressive seeded fault injection
# (transient flips + stuck cells far beyond any real part). The suite's
# seeds are fixed in the test source, so a failure here is a real
# regression in the recovery path, reproducible bit-for-bit — never flake.
echo "==> chaos fault-injection suite (fixed seeds)"
cargo test -q -p baryon-core --offline --test chaos_faults

# Crash-recovery gate: SIGKILL a serving process mid-run (after its job
# has written a checkpoint into the journal directory), restart a server
# on the same journal, and require the recovered job to finish with the
# byte-identical result of an uninterrupted run. The harness is a single
# self-contained binary (it forks itself as the server child), so the
# gate needs no curl, fixed ports, or startup sleeps.
echo "==> serve kill-and-resume gate"
cargo run --release -p baryon-serve --bin kill_resume --offline

# Determinism gate: the `threads` knob is a pure host-side throughput
# lever. Runs with 8 worker threads must be byte-identical to the
# single-threaded run — full result JSON and non-span telemetry — and a
# checkpoint cut inside a parallel run must resume to the same bytes.
echo "==> parallel determinism gate (threads 1 vs 8)"
cargo test -q -p baryon-bench --release --offline --test parallel_determinism

# Hot-path oracle: every controller on every registry workload must hash
# to the goldens blessed before the data-oriented refactor. Any
# behaviour drift in the arena/memo/SoA structures fails here first.
echo "==> differential golden gate (10 controllers x 17 workloads)"
cargo test -q -p baryon-bench --release --offline --test differential_golden

# Fleet determinism gate: boot a coordinator over 3 real shard
# processes, submit a batched grid sweep, SIGKILL one shard while cells
# are in flight, and require the supervisor to restart it and the
# gathered result to be byte-identical to a single-process run of the
# same spec. Also asserts the event stream's progress is monotonic and
# /v1/metrics reports every shard under its shard<i>. namespace.
echo "==> fleet kill-mid-sweep determinism gate (3 shards)"
cargo run --release -p baryon-fleet --bin fleet_gate --offline

# Config-rollout gate: on a live 3-shard fleet with a grid sweep in
# flight, stage a degraded-but-valid policy (1 ms job deadline) and
# commit. The rolling restart's canary must fail on the first shard and
# the fleet must roll itself back: 409 rollout_failed, the slot marked
# bad, zero lost jobs, and the gathered grid byte-identical to a
# single-process run. Then a benign policy must commit cleanly (the
# generation propagating into results and every shard's metrics) and
# roll back to the unstamped baseline.
echo "==> fleet config-rollout auto-rollback gate (3 shards)"
cargo run --release -p baryon-fleet --bin rollout_gate --offline

# Fleet chaos gate: the degradation ladder under aggressive seeded fault
# injection on every shard (torn/failed journal appends, silent
# post-write corruption, read flips, fsync failures, post-CRC response
# flips) plus a forced crash loop. One shard must exhaust its crash-loop
# budget and be quarantined with singles failing over, rotten checkpoint
# rotations must be quarantined down the fallback ladder to a cold run,
# and an 8-cell sweep over the degraded fleet must lose zero jobs and
# gather byte-identical to a fault-free run. To reproduce a failure
# exactly, re-run with the seed and rates it printed, e.g.
#   BARYON_CHAOS_SEED=42 BARYON_CHAOS_CORRUPT_PPM=20000 ... chaos_gate
# (every BARYON_CHAOS_*_PPM knob honors the environment; all default off
# outside this gate, so nothing else in CI sees injected faults).
echo "==> fleet chaos gate (hostile disk + lying shard, 3 shards)"
cargo run --release -p baryon-fleet --bin chaos_gate --offline

# Throughput + telemetry overhead gate: the sim-throughput harness runs
# a small workload matrix twice (spans off / spans on) and fails when
# enabling telemetry costs more than 5% aggregate wall-clock (override
# with BARYON_BENCH_MAX_OVERHEAD_PCT) or when any workload drops below
# its per-workload ops/sec regression floor (scale the floors with
# BARYON_BENCH_FLOOR_SCALE on slow hosts). It also refreshes the
# profiling document BENCH_sim_throughput.json at the repository root,
# now including the fleet_submit control-plane figure (jobs/sec for
# trivial specs through a live 2-shard coordinator).
echo "==> bench: sim-throughput (regression floors + telemetry overhead gate)"
cargo run --release -p baryon-fleet --bin sim_throughput --offline

# Metadata footprint gate: runs the registry through baryon (flat remap
# table), hybrid2, and trimma (multi-level remap) with telemetry on,
# refreshes BENCH_metadata.json at the repository root (footprint bytes,
# remap-walk span time, hot-level hit latency/rate per workload), and
# fails when trimma's live footprint stops undercutting the flat table
# on a majority of workloads (override with BARYON_METADATA_MIN_WINS).
echo "==> bench: metadata footprint (trimma vs flat regression gate)"
cargo run --release -p baryon-bench --bin metadata_report --offline

echo "==> OK"

#!/usr/bin/env sh
# Tier-1 gate for the Baryon reproduction.
#
# The workspace is hermetic: it has zero external dependencies, so every
# step below runs with `--offline` and must succeed on a machine with no
# network and an empty crates.io cache. Adding a dependency that breaks
# this is a build regression.
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --workspace --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

echo "==> OK"

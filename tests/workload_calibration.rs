//! Calibration guards: each workload analogue must keep the qualitative
//! properties its real counterpart is chosen for in the paper (write mix,
//! value compressibility, locality class). These tests pin the generator
//! and content-model tuning so refactors cannot silently change what the
//! benchmark figures measure.

use baryon::compress::best_compressed_size;
use baryon::workloads::{by_name, registry, Scale, Workload};

const SCALE: Scale = Scale { divisor: 1024 };

/// Measured write fraction over a sample of ops from all cores.
fn write_fraction(w: &Workload) -> f64 {
    let mut writes = 0usize;
    let mut total = 0usize;
    for core in 0..16 {
        let mut g = w.spawn_core(core, 16, 9);
        for _ in 0..2_000 {
            if g.next_op().write {
                writes += 1;
            }
            total += 1;
        }
    }
    writes as f64 / total as f64
}

/// Average compression factor of sampled 128 B chunks (the CF-2 check
/// granularity under cacheline alignment).
fn avg_cf(w: &Workload) -> f64 {
    let mem = w.contents(9);
    let mut raw = 0usize;
    let mut stored = 0usize;
    for i in 0..2_000u64 {
        let addr = (i * 40_507) % (w.footprint / 128) * 128;
        let chunk = mem.range(addr, 128);
        raw += 128;
        stored += if best_compressed_size(&chunk) <= 64 {
            64
        } else {
            128
        };
    }
    raw as f64 / stored as f64
}

/// Fraction of consecutive op pairs staying within one 2 kB block.
fn block_locality(w: &Workload) -> f64 {
    let mut g = w.spawn_core(0, 16, 9);
    let mut same = 0usize;
    let mut prev = g.next_op().addr / 2048;
    for _ in 0..5_000 {
        let b = g.next_op().addr / 2048;
        if b == prev {
            same += 1;
        }
        prev = b;
    }
    same as f64 / 5_000.0
}

fn get(name: &str) -> Workload {
    by_name(name, SCALE).unwrap_or_else(|| panic!("workload {name} missing"))
}

#[test]
fn lbm_is_write_heavy_and_incompressible() {
    let w = get("519.lbm_r");
    let wf = write_fraction(&w);
    assert!(wf > 0.4, "lbm write fraction {wf} (paper: write-intensive)");
    let cf = avg_cf(&w);
    assert!(cf < 1.15, "lbm CF {cf} (paper: ~1.0, compression useless)");
}

#[test]
fn fotonik_is_highly_compressible() {
    let cf = avg_cf(&get("549.fotonik3d_r"));
    assert!(
        cf > 1.5,
        "fotonik CF {cf} (paper: 2.42, the best compressor case)"
    );
}

#[test]
fn mcf_is_read_mostly_pointer_chasing() {
    let w = get("505.mcf_r");
    let wf = write_fraction(&w);
    assert!((0.1..0.4).contains(&wf), "mcf write fraction {wf}");
    let loc = block_locality(&w);
    assert!(
        (0.5..0.99).contains(&loc),
        "mcf block locality {loc}: chasing with stable hot windows"
    );
}

#[test]
fn xz_has_lowest_spatial_locality_of_the_chasers() {
    let xz = block_locality(&get("557.xz_r"));
    let mcf = block_locality(&get("505.mcf_r"));
    assert!(
        xz < mcf,
        "xz locality {xz} must undercut mcf {mcf} (paper: xz prefers 64 B sub-blocks)"
    );
}

#[test]
fn streams_are_sequential() {
    for name in ["503.bwaves_r", "549.fotonik3d_r", "554.roms_r", "519.lbm_r"] {
        let mut g = get(name).spawn_core(0, 16, 9);
        // Round-robin streams: an op continues *some* recent address by
        // exactly one line.
        let mut recent: Vec<u64> = Vec::new();
        let mut seq = 0usize;
        for _ in 0..2_000 {
            let a = g.next_op().addr;
            if recent.iter().any(|p| a == p + 64) {
                seq += 1;
            }
            recent.push(a);
            if recent.len() > 16 {
                recent.remove(0);
            }
        }
        assert!(seq > 1_800, "{name}: stream pattern lost ({seq}/2000)");
    }
}

#[test]
fn ycsb_update_fractions_differ() {
    let a = write_fraction(&get("ycsb-a"));
    let b = write_fraction(&get("ycsb-b"));
    assert!(a > 0.1, "ycsb-a is 50/50 read/update (writes {a})");
    assert!(
        b < a / 2.0,
        "ycsb-b (95/5) must write far less than ycsb-a ({b} vs {a})"
    );
}

#[test]
fn ycsb_load_is_pure_writes() {
    let wf = write_fraction(&get("ycsb-load"));
    assert!(wf > 0.99, "the loading phase only inserts records ({wf})");
}

#[test]
fn bfs_alternates_between_regimes() {
    // Direction-optimizing BFS mixes sparse gathers with dense scans; the
    // write fraction sits between the pure readers and the writers.
    let w = get("bfs.twi");
    let wf = write_fraction(&w);
    assert!((0.05..0.45).contains(&wf), "bfs write fraction {wf}");
    // Its locality is burstier than pagerank's steady gather loop.
    let bfs_loc = block_locality(&w);
    assert!((0.0..0.9).contains(&bfs_loc));
}

#[test]
fn graph_workloads_are_read_dominated() {
    for name in ["pr.twi", "pr.web", "cc.twi"] {
        let wf = write_fraction(&get(name));
        assert!(
            wf < 0.25,
            "{name}: pull-mode iteration writes only destinations ({wf})"
        );
    }
}

#[test]
fn dnn_weights_are_never_written() {
    // The weight region (first 80% of the footprint) must see no stores.
    let w = get("resnet50");
    let weights_end = w.footprint * 8 / 10;
    for core in [0usize, 5] {
        let mut g = w.spawn_core(core, 16, 9);
        for _ in 0..20_000 {
            let op = g.next_op();
            if op.write {
                assert!(
                    op.addr >= weights_end - 2048,
                    "core {core} wrote into the weight region at {:#x}",
                    op.addr
                );
            }
        }
    }
}

#[test]
fn compressibility_ordering_matches_paper() {
    // fotonik (best) > graph/int workloads > lbm (worst).
    let fot = avg_cf(&get("549.fotonik3d_r"));
    let pr = avg_cf(&get("pr.twi"));
    let lbm = avg_cf(&get("519.lbm_r"));
    assert!(fot > pr, "fotonik {fot} must out-compress pr.twi {pr}");
    assert!(pr > lbm, "pr.twi {pr} must out-compress lbm {lbm}");
}

#[test]
fn every_workload_has_positive_cf_and_sane_writes() {
    for w in registry(SCALE) {
        let cf = avg_cf(&w);
        assert!(
            (1.0..=4.0).contains(&cf),
            "{}: CF {cf} out of range",
            w.name
        );
        let wf = write_fraction(&w);
        assert!((0.0..=1.0).contains(&wf), "{}: write fraction {wf}", w.name);
    }
}

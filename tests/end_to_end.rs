//! Cross-crate integration tests: every controller on every workload
//! family, end to end, with stats-consistency checks.

use baryon::core::config::BaryonConfig;
use baryon::core::system::{ControllerKind, System, SystemConfig};
use baryon::core::RunResult;
use baryon::workloads::{by_name, registry, Scale};

const SCALE: Scale = Scale { divisor: 2048 };
const INSTS: u64 = 15_000;

fn run(kind: ControllerKind, workload: &str, seed: u64) -> RunResult {
    let w = by_name(workload, SCALE).expect("workload exists");
    let mut cfg = SystemConfig::with_controller(SCALE, kind);
    cfg.warmup_insts = 5_000;
    System::new(cfg, &w, seed).run(INSTS)
}

fn all_kinds() -> Vec<(&'static str, ControllerKind)> {
    vec![
        ("simple", ControllerKind::Simple),
        ("unison", ControllerKind::Unison),
        ("dice", ControllerKind::Dice),
        ("hybrid2", ControllerKind::Hybrid2),
        (
            "baryon",
            ControllerKind::Baryon(BaryonConfig::default_cache_mode(SCALE)),
        ),
        (
            "baryon-fa",
            ControllerKind::Baryon(BaryonConfig::default_flat_fa(SCALE)),
        ),
    ]
}

#[test]
fn every_controller_runs_every_family() {
    // One workload per generator family keeps the test fast while covering
    // all code paths.
    for workload in ["505.mcf_r", "519.lbm_r", "pr.twi", "resnet50", "ycsb-a"] {
        for (name, kind) in all_kinds() {
            let r = run(kind, workload, 7);
            assert!(r.total_cycles > 0, "{name} on {workload}: no cycles");
            assert!(
                r.instructions >= INSTS * 16,
                "{name} on {workload}: too few instructions"
            );
            let s = &r.serve;
            assert!(
                (0.0..=1.0).contains(&s.fast_serve_rate()),
                "{name} on {workload}: serve rate {} out of range",
                s.fast_serve_rate()
            );
            assert!(s.energy_pj >= 0.0);
        }
    }
}

#[test]
fn deterministic_across_runs() {
    for (name, kind) in all_kinds() {
        let a = run(kind.clone(), "520.omnetpp_r", 3);
        let b = run(kind, "520.omnetpp_r", 3);
        assert_eq!(a.total_cycles, b.total_cycles, "{name} not deterministic");
        assert_eq!(a.serve, b.serve, "{name} stats not deterministic");
    }
}

#[test]
fn seeds_change_outcomes() {
    let a = run(ControllerKind::Simple, "505.mcf_r", 1);
    let b = run(ControllerKind::Simple, "505.mcf_r", 2);
    assert_ne!(
        a.total_cycles, b.total_cycles,
        "different seeds should explore different traces"
    );
}

#[test]
fn traffic_accounting_is_consistent() {
    for (name, kind) in all_kinds() {
        let r = run(kind, "ycsb-b", 5);
        let s = &r.serve;
        // Useful bytes must be at least one line per read + writeback.
        assert!(
            s.useful_bytes >= 64 * (s.reads + s.writebacks),
            "{name}: useful bytes too low"
        );
        // Every fast-served read moved fast-memory bytes (except pure-zero
        // serves, which Baryon answers without any data movement).
        if s.fast_served > 0 && name != "baryon" && name != "baryon-fa" {
            assert!(s.fast_bytes > 0, "{name}: fast serves without fast traffic");
        }
    }
}

#[test]
fn baryon_counters_cover_all_reads() {
    let w = by_name("505.mcf_r", SCALE).expect("workload");
    let mut cfg = SystemConfig::baryon_cache_mode(SCALE);
    cfg.warmup_insts = 0;
    let mut sys = System::new(cfg, &w, 9);
    let r = sys.run(INSTS);
    let c = sys.controller().as_baryon().expect("baryon").counters();
    let by_case = c.case1_stage_hits
        + c.case2_commit_hits
        + c.case3_stage_misses
        + c.case4_bypasses
        + c.case5_block_misses
        + c.flat_original_hits
        + c.displaced_accesses;
    assert_eq!(
        by_case, r.serve.reads,
        "the five cases must partition reads"
    );
}

#[test]
fn zero_heavy_data_serves_for_free() {
    use baryon::workloads::WorkloadKind;
    // A workload over pure-zero data: Baryon's Z optimization should serve
    // many reads without touching the fast-memory data array.
    let mut w = by_name("549.fotonik3d_r", SCALE).expect("workload");
    w.mix = baryon::workloads::ProfileMix::pure(baryon::workloads::ValueProfile::Zero);
    w.kind = WorkloadKind::Stream {
        streams: 2,
        write_streams: 0,
    };
    let mut cfg = SystemConfig::baryon_cache_mode(SCALE);
    cfg.warmup_insts = 2_000;
    let mut sys = System::new(cfg, &w, 3);
    sys.run(INSTS);
    let c = sys.controller().as_baryon().expect("baryon").counters();
    assert!(c.zero_serves > 0, "zero blocks should hit the Z path");
}

#[test]
fn larger_fast_memory_does_not_hurt() {
    // Same workload, 2x fast memory: the Simple baseline must not slow down.
    let w = by_name("505.mcf_r", SCALE).expect("workload");
    let small = {
        let mut cfg = SystemConfig::with_controller(SCALE, ControllerKind::Simple);
        cfg.warmup_insts = 5_000;
        System::new(cfg, &w, 7).run(INSTS)
    };
    let big_scale = Scale { divisor: 1024 };
    let big = {
        let mut cfg = SystemConfig::with_controller(big_scale, ControllerKind::Simple);
        cfg.warmup_insts = 5_000;
        // Same footprint as the small-scale run: reuse the small workload.
        System::new(cfg, &w, 7).run(INSTS)
    };
    assert!(
        big.total_cycles <= small.total_cycles,
        "doubling fast memory slowed Simple down ({} -> {})",
        small.total_cycles,
        big.total_cycles
    );
}

#[test]
fn registry_workloads_run_under_baryon() {
    // Smoke every registry entry briefly (shared + rate mode, all families).
    for w in registry(SCALE) {
        let mut cfg = SystemConfig::baryon_cache_mode(SCALE);
        cfg.warmup_insts = 0;
        let mut sys = System::new(cfg, &w, 11);
        let r = sys.run(2_000);
        assert!(r.total_cycles > 0, "{} failed to run", w.name);
    }
}

#[test]
fn flat_mode_conserves_residency() {
    // In flat mode every read must be served by exactly one residency
    // class; after heavy churn the counters still partition reads.
    let w = by_name("ycsb-a", SCALE).expect("workload");
    let mut cfg = SystemConfig::baryon_flat_fa(SCALE);
    cfg.warmup_insts = 5_000;
    let mut sys = System::new(cfg, &w, 13);
    let r = sys.run(INSTS);
    let c = sys.controller().as_baryon().expect("baryon").counters();
    let by_case = c.case1_stage_hits
        + c.case2_commit_hits
        + c.case3_stage_misses
        + c.case4_bypasses
        + c.case5_block_misses
        + c.flat_original_hits
        + c.displaced_accesses;
    assert_eq!(by_case, r.serve.reads);
}

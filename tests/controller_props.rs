//! Property-based tests driving the Baryon controller directly with random
//! access sequences and checking its architectural invariants, on the
//! in-repo `baryon_sim::check` harness.

use baryon::core::config::BaryonConfig;
use baryon::core::controller::BaryonController;
use baryon::core::ctrl::{MemoryController, Request};
use baryon::sim::check::{props, Gen};
use baryon::workloads::{MemoryContents, ProfileMix, Scale};

fn scale() -> Scale {
    Scale { divisor: 2048 }
}

fn mixed_contents(seed: u64) -> MemoryContents {
    MemoryContents::new(
        ProfileMix {
            zero: 1.0,
            narrow_int: 1.0,
            pointer: 1.0,
            float_similar: 1.0,
            float_random: 1.0,
            text: 1.0,
            random: 1.0,
        },
        seed,
    )
}

/// A bounded random op sequence: (line-aligned address, is_write).
fn ops(g: &mut Gen, max_addr: u64) -> Vec<(u64, bool)> {
    g.vec(1, 400, |g| {
        let line = g.range(0, max_addr / 64);
        (line * 64, g.bool())
    })
}

#[test]
fn random_sequences_never_break_invariants() {
    props("random_sequences_never_break_invariants").run(|g| {
        let seq = ops(g, 16 << 20);
        let seed = g.u64();
        let cfg = BaryonConfig::default_cache_mode(scale());
        let mut ctrl = BaryonController::new(cfg);
        let mut mem = mixed_contents(seed);
        let mut now = 0u64;
        for (addr, write) in &seq {
            now += 50;
            if *write {
                mem.write_line(*addr);
                ctrl.writeback(now, *addr, &mut mem);
            } else {
                let resp = ctrl.read(
                    now,
                    Request {
                        addr: *addr,
                        core: 0,
                    },
                    &mut mem,
                );
                assert!(resp.latency < 1_000_000, "runaway latency");
                // Extra lines never include the demanded line and are
                // always line-aligned.
                for l in &resp.extra_lines {
                    assert_ne!(*l, *addr & !63);
                    assert_eq!(l % 64, 0);
                }
            }
        }
        // Counters partition the reads.
        let c = ctrl.counters();
        let reads = seq.iter().filter(|(_, w)| !w).count() as u64;
        let by_case = c.case1_stage_hits
            + c.case2_commit_hits
            + c.case3_stage_misses
            + c.case4_bypasses
            + c.case5_block_misses
            + c.flat_original_hits
            + c.displaced_accesses;
        assert_eq!(by_case, reads);
        // The CF statistic stays in the architectural range (zero ranges
        // can push effective CF above 4 only via free zero coverage).
        assert!(c.avg_cf() >= 1.0);
        // Remap cache hit rate is a probability.
        let hr = ctrl.remap_cache_hit_rate();
        assert!((0.0..=1.0).contains(&hr) || hr.is_nan() || hr == 0.0);
    });
}

#[test]
fn read_after_read_hits_faster() {
    props("read_after_read_hits_faster").run(|g| {
        let seed = g.u64();
        let block = g.range(0, 512);
        let cfg = BaryonConfig::default_cache_mode(scale());
        let mut ctrl = BaryonController::new(cfg);
        let mut mem = mixed_contents(seed);
        let addr = block * 2048;
        let r1 = ctrl.read(0, Request { addr, core: 0 }, &mut mem);
        let r2 = ctrl.read(1_000_000, Request { addr, core: 0 }, &mut mem);
        assert!(r2.served_by_fast, "second read must be staged");
        assert!(r2.latency <= r1.latency);
    });
}

#[test]
fn flat_mode_partitions_reads() {
    props("flat_mode_partitions_reads").run(|g| {
        let seq = ops(g, 8 << 20);
        let seed = g.u64();
        let cfg = BaryonConfig::default_flat_fa(scale());
        let mut ctrl = BaryonController::new(cfg);
        let mut mem = mixed_contents(seed);
        let mut now = 0u64;
        let mut reads = 0u64;
        for (addr, write) in &seq {
            now += 50;
            if *write {
                mem.write_line(*addr);
                ctrl.writeback(now, *addr, &mut mem);
            } else {
                reads += 1;
                ctrl.read(
                    now,
                    Request {
                        addr: *addr,
                        core: 0,
                    },
                    &mut mem,
                );
            }
        }
        let c = ctrl.counters();
        let by_case = c.case1_stage_hits
            + c.case2_commit_hits
            + c.case3_stage_misses
            + c.case4_bypasses
            + c.case5_block_misses
            + c.flat_original_hits
            + c.displaced_accesses;
        assert_eq!(by_case, reads);
    });
}

#[test]
fn ablations_run_cleanly() {
    props("ablations_run_cleanly").run(|g| {
        let seq = ops(g, 4 << 20);
        let which = g.choice(4);
        let mut cfg = BaryonConfig::default_cache_mode(scale());
        match which {
            0 => cfg.stage_bytes = 0,
            1 => cfg.two_level_replacement = false,
            2 => cfg.cacheline_aligned = false,
            _ => cfg.zero_opt = false,
        }
        let mut ctrl = BaryonController::new(cfg);
        let mut mem = mixed_contents(1);
        let mut now = 0u64;
        for (addr, write) in &seq {
            now += 50;
            if *write {
                mem.write_line(*addr);
                ctrl.writeback(now, *addr, &mut mem);
            } else {
                ctrl.read(
                    now,
                    Request {
                        addr: *addr,
                        core: 0,
                    },
                    &mut mem,
                );
            }
        }
        // No panics and sane stats is the property here.
        assert!(ctrl.serve_stats().reads <= seq.len() as u64);
    });
}

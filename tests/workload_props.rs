//! Property-based tests for the workload generators and content model, on
//! the in-repo `baryon_sim::check` harness.

use baryon::sim::check::props;
use baryon::workloads::{registry, MemoryContents, ProfileMix, Scale, ValueProfile};

#[test]
fn generators_stay_in_bounds() {
    props("generators_stay_in_bounds").run(|g| {
        let seed = g.u64();
        let core = g.usize_range(0, 16);
        let scale = Scale { divisor: 2048 };
        for w in registry(scale) {
            let mut gen = w.spawn_core(core, 16, seed);
            for _ in 0..200 {
                let op = gen.next_op();
                assert!(
                    op.addr < w.footprint,
                    "{}: {:#x} outside footprint {:#x}",
                    w.name,
                    op.addr,
                    w.footprint
                );
            }
        }
    });
}

#[test]
fn generators_replay_identically() {
    props("generators_replay_identically").run(|g| {
        let seed = g.u64();
        let scale = Scale { divisor: 2048 };
        let w = registry(scale)
            .into_iter()
            .next()
            .expect("non-empty registry");
        let mut a = w.spawn_core(0, 16, seed);
        let mut b = w.spawn_core(0, 16, seed);
        for _ in 0..200 {
            assert_eq!(a.next_op(), b.next_op());
        }
    });
}

#[test]
fn contents_are_pure_functions() {
    props("contents_are_pure_functions").run(|g| {
        let addr = g.range(0, 1 << 24);
        let seed = g.u64();
        let mem = MemoryContents::new(ProfileMix::pure(ValueProfile::NarrowInt), seed);
        assert_eq!(mem.line(addr), mem.line(addr));
        // Any address within the same line yields the same bytes.
        assert_eq!(mem.line(addr & !63), mem.line(addr | 63));
    });
}

#[test]
fn writes_only_affect_their_line() {
    props("writes_only_affect_their_line").run(|g| {
        let addr = g.range(0, 1 << 24);
        let mut mem = MemoryContents::new(ProfileMix::pure(ValueProfile::Text), 5);
        let line = addr & !63;
        let neighbour = line ^ 64;
        let before = mem.line(neighbour);
        mem.write_line(line);
        assert_eq!(mem.line(neighbour), before);
        assert_eq!(mem.version_of(line), 1);
        assert_eq!(mem.version_of(neighbour), 0);
    });
}

#[test]
fn version_monotonically_changes_content() {
    props("version_monotonically_changes_content").run(|g| {
        let addr = g.range(0, 1 << 20);
        let writes = g.usize_range(1, 5);
        let mut mem = MemoryContents::new(ProfileMix::pure(ValueProfile::NarrowInt), 5);
        let mut seen = std::collections::HashSet::new();
        seen.insert(mem.line(addr).to_vec());
        for _ in 0..writes {
            mem.write_line(addr);
            seen.insert(mem.line(addr).to_vec());
        }
        // At least the first write must change the bytes.
        assert!(seen.len() >= 2);
    });
}

#[test]
fn profile_assignment_respects_pure_mixes() {
    props("profile_assignment_respects_pure_mixes").run(|g| {
        let block = g.range(0, 10_000);
        let seed = g.u64();
        for p in [ValueProfile::Zero, ValueProfile::Random, ValueProfile::Text] {
            let mem = MemoryContents::new(ProfileMix::pure(p), seed);
            assert_eq!(mem.profile_of(block * 2048), p);
        }
    });
}

#[test]
fn footprints_scale_linearly() {
    let small = registry(Scale { divisor: 1024 });
    let large = registry(Scale { divisor: 256 });
    for (s, l) in small.iter().zip(&large) {
        assert_eq!(s.name, l.name);
        let ratio = l.footprint as f64 / s.footprint as f64;
        assert!(
            (ratio - 4.0).abs() < 0.01,
            "{}: footprint ratio {ratio} != 4",
            s.name
        );
    }
}

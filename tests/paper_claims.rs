//! The paper's headline claims, encoded as tests.
//!
//! These are miniature (fast) versions of the bench-suite experiments with
//! generous margins: they do not pin exact numbers, they pin *directions*
//! the reproduction stands on. If a refactor flips one of these, the
//! figures are broken too.
//!
//! Scale: divisor 1024 (4 MB DRAM + 32 MB NVM), 40 k instructions per core
//! after 15 k warm-up; each test runs in a few seconds.

use baryon::core::config::BaryonConfig;
use baryon::core::system::{ControllerKind, System, SystemConfig};
use baryon::workloads::{by_name, Scale};

const SCALE: Scale = Scale { divisor: 1024 };
const INSTS: u64 = 40_000;

fn cycles(workload: &str, kind: ControllerKind) -> u64 {
    let w = by_name(workload, SCALE).expect("workload");
    let mut cfg = SystemConfig::with_controller(SCALE, kind);
    cfg.warmup_insts = 15_000;
    System::new(cfg, &w, 42).run(INSTS).total_cycles
}

fn baryon() -> ControllerKind {
    ControllerKind::Baryon(BaryonConfig::default_cache_mode(SCALE))
}

#[test]
fn claim_baryon_beats_the_dram_cache_baselines_on_graphs() {
    // §IV-B: "Baryon delivers higher benefits on workloads with large
    // datasets, e.g. pr.twitter" — the headline Fig 9 win.
    let simple = cycles("pr.twi", ControllerKind::Simple);
    let unison = cycles("pr.twi", ControllerKind::Unison);
    let dice = cycles("pr.twi", ControllerKind::Dice);
    let b = cycles("pr.twi", baryon());
    assert!(
        b * 12 < simple * 10,
        "baryon {b} vs simple {simple}: need >1.2x"
    );
    assert!(
        b * 12 < unison * 10,
        "baryon {b} vs unison {unison}: need >1.2x"
    );
    assert!(b < dice, "baryon {b} vs dice {dice}");
}

#[test]
fn claim_compressible_workloads_benefit() {
    // §IV-B: fotonik3d (CF 2.42) is a headline compression win: Baryon
    // must beat the compression-less sub-blocking baseline (Unison).
    let unison = cycles("549.fotonik3d_r", ControllerKind::Unison);
    let b = cycles("549.fotonik3d_r", baryon());
    assert!(b < unison, "baryon {b} vs unison {unison}");
}

#[test]
fn claim_lbm_is_baryons_worst_case() {
    // §IV-B: "Baryon is only slower than Unison Cache on 519.lbm_r ...
    // compression only adds overheads". At minimum, lbm must be Baryon's
    // weakest SPEC result vs Simple.
    let lbm_ratio =
        cycles("519.lbm_r", ControllerKind::Simple) as f64 / cycles("519.lbm_r", baryon()) as f64;
    let mcf_ratio =
        cycles("505.mcf_r", ControllerKind::Simple) as f64 / cycles("505.mcf_r", baryon()) as f64;
    assert!(
        lbm_ratio < mcf_ratio,
        "lbm ({lbm_ratio:.2}x) must be weaker for Baryon than mcf ({mcf_ratio:.2}x)"
    );
    assert!(
        lbm_ratio < 1.05,
        "lbm speedup {lbm_ratio:.2}x should be ~none"
    );
}

#[test]
fn claim_flat_baryon_beats_hybrid2() {
    // Fig 10: Baryon-FA over Hybrid2 in flat mode.
    let h = cycles("pr.twi", ControllerKind::Hybrid2);
    let b = cycles(
        "pr.twi",
        ControllerKind::Baryon(BaryonConfig::default_flat_fa(SCALE)),
    );
    assert!(b < h, "baryon-fa {b} vs hybrid2 {h}");
}

#[test]
fn claim_the_stage_area_matters() {
    // Fig 13(c): removing the stage area costs ~34.5% on average; at this
    // miniature scale we require >= 10% on a stage-sensitive workload.
    let mut no_stage = BaryonConfig::default_cache_mode(SCALE);
    no_stage.stage_bytes = 0;
    let with = cycles("pr.twi", baryon());
    let without = cycles("pr.twi", ControllerKind::Baryon(no_stage));
    assert!(
        without as f64 > with as f64 * 1.10,
        "no-stage {without} vs default {with}: need >= 10% loss"
    );
}

#[test]
fn claim_two_level_replacement_matters() {
    // Fig 13(a): sub-block-only replacement degrades (paper ~25%).
    let mut sub_only = BaryonConfig::default_cache_mode(SCALE);
    sub_only.two_level_replacement = false;
    let with = cycles("pr.twi", baryon());
    let without = cycles("pr.twi", ControllerKind::Baryon(sub_only));
    assert!(
        without > with,
        "sub-block-only {without} vs two-level {with}"
    );
}

#[test]
fn claim_commit_k_is_insensitive_in_the_middle() {
    // Fig 13(d): k = 1, 2, 4 perform similarly (within a few percent).
    let mut results = Vec::new();
    for k in [1.0, 2.0, 4.0] {
        let mut cfg = BaryonConfig::default_cache_mode(SCALE);
        cfg.commit_k = k;
        results.push(cycles("549.fotonik3d_r", ControllerKind::Baryon(cfg)) as f64);
    }
    let max = results.iter().cloned().fold(0.0f64, f64::max);
    let min = results.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 1.05,
        "k in 1..4 must agree within 5% (spread {:.3})",
        max / min
    );
}

#[test]
fn claim_decompression_latency_is_negligible() {
    // Fig 12: 5-cycle decompression costs <1% end to end.
    let mut zero_lat = BaryonConfig::default_cache_mode(SCALE);
    zero_lat.decompress_cycles = 0;
    let with = cycles("549.fotonik3d_r", baryon()) as f64;
    let without = cycles("549.fotonik3d_r", ControllerKind::Baryon(zero_lat)) as f64;
    assert!(
        (with / without - 1.0).abs() < 0.02,
        "decompression latency impact {:.4} should be negligible",
        with / without - 1.0
    );
}

#[test]
fn claim_metadata_budget_holds() {
    // §III-B: 448 kB stage tags + 32 kB remap cache = 480 kB SRAM, and a
    // remap table at ~0.1% of memory — at the paper's own scale.
    let paper = BaryonConfig::default_cache_mode(Scale { divisor: 1 });
    let budget = baryon::core::budget::MetadataBudget::of(&paper);
    assert_eq!(budget.total_sram_bytes(), 480 << 10);
    assert!(budget.table_fraction() < 0.0011);
    assert!(budget.naive_blowup() > 10.0);
}

#[test]
fn claim_hardware_beats_os_paging() {
    // §II-A: hardware-managed hybrid memory adapts faster than OS page
    // migration with its software costs and 4 kB granularity.
    let os = cycles("ycsb-a", ControllerKind::OsPaging);
    let b = cycles("ycsb-a", baryon());
    assert!(b < os, "baryon {b} vs os-paging {os}");
}

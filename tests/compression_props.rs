//! Property-based tests for the compression substrate and metadata codecs.

use baryon::compress::{bdi, best_compressed_size, compress_extended, cpack, fpc, Cf, RangeCompressor};
use baryon::core::metadata::stage_entry::RangeRef;
use baryon::core::metadata::{locate_sub_block, RemapEntry};
use proptest::prelude::*;

proptest! {
    #[test]
    fn fpc_roundtrips_all_inputs(data in proptest::collection::vec(any::<u8>(), 1..64)) {
        // Pad to whole words.
        let mut d = data;
        while d.len() % 4 != 0 {
            d.push(0);
        }
        let enc = fpc::encode(&d);
        prop_assert_eq!(fpc::decode(&enc, d.len() / 4), d.clone());
        // The size model matches the real encoder.
        prop_assert_eq!(enc.len(), fpc::compressed_size(&d));
    }

    #[test]
    fn bdi_roundtrips_all_inputs(data in proptest::collection::vec(any::<u8>(), 1..128)) {
        let mut d = data;
        while d.len() % 8 != 0 {
            d.push(0);
        }
        let enc = bdi::encode(&d);
        prop_assert_eq!(bdi::decode(&enc), d);
    }

    #[test]
    fn best_size_never_exceeds_input(words in proptest::collection::vec(any::<u64>(), 1..32)) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        prop_assert!(best_compressed_size(&bytes) <= bytes.len());
    }

    #[test]
    fn compression_is_deterministic(words in proptest::collection::vec(any::<u64>(), 8..8+1)) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        prop_assert_eq!(best_compressed_size(&bytes), best_compressed_size(&bytes));
    }

    #[test]
    fn cacheline_aligned_is_never_looser(words in proptest::collection::vec(any::<u64>(), 64..64+1)) {
        // 512 B of arbitrary data: if the strict (cacheline-aligned) mode
        // accepts CF2, the loose whole-range mode must accept it too.
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let strict = RangeCompressor::cacheline_aligned();
        let loose = RangeCompressor::whole_range();
        if strict.fits(&bytes, Cf::X2) {
            prop_assert!(loose.fits(&bytes, Cf::X2));
        }
    }

    #[test]
    fn cpack_roundtrips_all_inputs(data in proptest::collection::vec(any::<u8>(), 1..96)) {
        let mut d = data;
        while d.len() % 4 != 0 {
            d.push(0);
        }
        let enc = cpack::encode(&d);
        prop_assert_eq!(cpack::decode(&enc, d.len() / 4), d.clone());
        prop_assert_eq!(enc.len(), cpack::compressed_size(&d));
    }

    #[test]
    fn extended_selection_never_worse(words in proptest::collection::vec(any::<u64>(), 8..8+1)) {
        // Adding C-Pack to the selection can only shrink the chosen size.
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        prop_assert!(compress_extended(&bytes).size <= best_compressed_size(&bytes));
    }

    #[test]
    fn remap_entry_roundtrip(bits in any::<u16>()) {
        // Every structurally valid decoded entry re-encodes identically.
        let e = RemapEntry::decode16(bits);
        if e.check(8).is_ok() {
            prop_assert_eq!(RemapEntry::decode16(e.encode16()), e);
        }
    }

    #[test]
    fn stage_slot_roundtrip(bits in any::<u8>()) {
        if let Some(r) = RangeRef::decode8(bits) {
            prop_assert_eq!(RangeRef::decode8(r.encode8()), Some(r));
        }
    }

    #[test]
    fn locator_matches_naive_layout(
        plan in proptest::collection::vec(
            proptest::collection::vec((0usize..8, 0usize..3), 0..4),
            1..8,
        )
    ) {
        // Build random-but-valid remap entries (non-overlapping aligned
        // ranges per block) and check the locator against a naive walk.
        let mut entries = Vec::new();
        for ranges in &plan {
            let mut e = RemapEntry::empty();
            for (start, cf_idx) in ranges {
                let cf = [Cf::X1, Cf::X2, Cf::X4][*cf_idx];
                let aligned = start / cf.sub_blocks() * cf.sub_blocks();
                let covered: u32 =
                    ((1u32 << cf.sub_blocks()) - 1) << aligned;
                if e.remap & covered == 0 {
                    e.set_range(aligned, cf);
                }
            }
            entries.push(e);
        }
        prop_assert!(entries.iter().all(|e| e.check(8).is_ok()));
        // Naive: assign slots in (block, sub) order, pointer 0 everywhere.
        let mut slot = 0usize;
        for (blk, e) in entries.iter().enumerate() {
            let mut s = 0usize;
            while s < 8 {
                match e.range_of(s) {
                    Some((start, cf)) => {
                        for covered in start..start + cf.sub_blocks() {
                            prop_assert_eq!(
                                locate_sub_block(&entries, blk, covered),
                                Some(slot),
                                "block {} sub {}", blk, covered
                            );
                        }
                        slot += 1;
                        s = start + cf.sub_blocks();
                    }
                    None => {
                        prop_assert_eq!(locate_sub_block(&entries, blk, s), None);
                        s += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn slots_used_is_consistent_with_locator(
        starts in proptest::collection::vec((0usize..8, 0usize..3), 0..4)
    ) {
        let mut e = RemapEntry::empty();
        for (start, cf_idx) in &starts {
            let cf = [Cf::X1, Cf::X2, Cf::X4][*cf_idx];
            let aligned = start / cf.sub_blocks() * cf.sub_blocks();
            let covered: u32 = ((1u32 << cf.sub_blocks()) - 1) << aligned;
            if e.remap & covered == 0 {
                e.set_range(aligned, cf);
            }
        }
        // The number of distinct slots the entry's subs map to equals
        // slots_used().
        let mut slots = std::collections::HashSet::new();
        for s in 0..8 {
            if let Some(slot) = e.slot_of(s) {
                slots.insert(slot);
            }
        }
        prop_assert_eq!(slots.len(), e.slots_used());
    }
}

//! Property-based tests for the compression substrate and metadata codecs,
//! running on the in-repo `baryon_sim::check` harness (seeded, shrinking,
//! `BARYON_PROP_CASES` to widen, `BARYON_PROP_SEED` to replay a failure).

use baryon::compress::{
    bdi, best_compressed_size, compress_extended, cpack, fpc, frame, Cf, RangeCompressor,
};
use baryon::core::metadata::stage_entry::RangeRef;
use baryon::core::metadata::{locate_sub_block, RemapEntry};
use baryon::sim::check::{props, Gen};

fn byte_vec(g: &mut Gen, min: usize, max: usize) -> Vec<u8> {
    g.vec(min, max, |g| g.u8())
}

fn word_vec(g: &mut Gen, min: usize, max: usize) -> Vec<u64> {
    g.vec(min, max, |g| g.u64())
}

fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

#[test]
fn fpc_roundtrips_all_inputs() {
    props("fpc_roundtrips_all_inputs").run(|g| {
        // Pad to whole words.
        let mut d = byte_vec(g, 1, 64);
        while !d.len().is_multiple_of(4) {
            d.push(0);
        }
        let enc = fpc::encode(&d);
        assert_eq!(fpc::decode(&enc, d.len() / 4).expect("clean stream"), d);
        // The size model matches the real encoder.
        assert_eq!(enc.len(), fpc::compressed_size(&d));
    });
}

#[test]
fn bdi_roundtrips_all_inputs() {
    props("bdi_roundtrips_all_inputs").run(|g| {
        let mut d = byte_vec(g, 1, 128);
        while !d.len().is_multiple_of(8) {
            d.push(0);
        }
        let enc = bdi::encode(&d);
        assert_eq!(bdi::decode(&enc).expect("clean representation"), d);
    });
}

#[test]
fn best_size_never_exceeds_input() {
    props("best_size_never_exceeds_input").run(|g| {
        let bytes = words_to_bytes(&word_vec(g, 1, 32));
        assert!(best_compressed_size(&bytes) <= bytes.len());
    });
}

#[test]
fn compression_is_deterministic() {
    props("compression_is_deterministic").run(|g| {
        let bytes = words_to_bytes(&word_vec(g, 8, 8 + 1));
        assert_eq!(best_compressed_size(&bytes), best_compressed_size(&bytes));
    });
}

#[test]
fn cacheline_aligned_is_never_looser() {
    props("cacheline_aligned_is_never_looser").run(|g| {
        // 512 B of arbitrary data: if the strict (cacheline-aligned) mode
        // accepts CF2, the loose whole-range mode must accept it too.
        let bytes = words_to_bytes(&word_vec(g, 64, 64 + 1));
        let strict = RangeCompressor::cacheline_aligned();
        let loose = RangeCompressor::whole_range();
        if strict.fits(&bytes, Cf::X2) {
            assert!(loose.fits(&bytes, Cf::X2));
        }
    });
}

#[test]
fn cpack_roundtrips_all_inputs() {
    props("cpack_roundtrips_all_inputs").run(|g| {
        let mut d = byte_vec(g, 1, 96);
        while !d.len().is_multiple_of(4) {
            d.push(0);
        }
        let enc = cpack::encode(&d);
        assert_eq!(cpack::decode(&enc, d.len() / 4).expect("clean stream"), d);
        assert_eq!(enc.len(), cpack::compressed_size(&d));
    });
}

#[test]
fn sealed_frames_roundtrip_and_never_yield_garbage() {
    props("sealed_frames_roundtrip_and_never_yield_garbage").run(|g| {
        let mut d = byte_vec(g, 8, 256);
        while !d.len().is_multiple_of(8) {
            d.push(0);
        }
        let sealed = frame::seal(&d);
        assert_eq!(frame::open(&sealed).expect("clean frame"), d);
        // Corrupt a random bit: the frame must open to either a typed
        // error or the exact original bytes (flip in dead padding) —
        // never different data.
        let mut bad = sealed.clone();
        let bit = g.usize_range(0, bad.len() * 8);
        bad[bit / 8] ^= 1 << (bit % 8);
        if let Ok(got) = frame::open(&bad) {
            assert_eq!(got, d, "bit {bit} flip opened to silent garbage");
        }
    });
}

#[test]
fn extended_selection_never_worse() {
    props("extended_selection_never_worse").run(|g| {
        // Adding C-Pack to the selection can only shrink the chosen size.
        let bytes = words_to_bytes(&word_vec(g, 8, 8 + 1));
        assert!(compress_extended(&bytes).size <= best_compressed_size(&bytes));
    });
}

#[test]
fn remap_entry_roundtrip() {
    props("remap_entry_roundtrip").run(|g| {
        // Every structurally valid decoded entry re-encodes identically.
        let bits = g.u16();
        let e = RemapEntry::decode16(bits);
        if e.check(8).is_ok() {
            assert_eq!(RemapEntry::decode16(e.encode16()), e);
        }
    });
}

#[test]
fn stage_slot_roundtrip() {
    props("stage_slot_roundtrip").run(|g| {
        let bits = g.u8();
        if let Some(r) = RangeRef::decode8(bits) {
            assert_eq!(RangeRef::decode8(r.encode8()), Some(r));
        }
    });
}

/// A random-but-valid set of non-overlapping aligned ranges for one entry.
fn random_entry(g: &mut Gen) -> RemapEntry {
    let ranges = g.vec(0, 4, |g| (g.usize_range(0, 8), g.choice(3)));
    let mut e = RemapEntry::empty();
    for (start, cf_idx) in ranges {
        let cf = [Cf::X1, Cf::X2, Cf::X4][cf_idx];
        let aligned = start / cf.sub_blocks() * cf.sub_blocks();
        let covered: u32 = ((1u32 << cf.sub_blocks()) - 1) << aligned;
        if e.remap & covered == 0 {
            e.set_range(aligned, cf);
        }
    }
    e
}

#[test]
fn locator_matches_naive_layout() {
    props("locator_matches_naive_layout").run(|g| {
        // Build random-but-valid remap entries (non-overlapping aligned
        // ranges per block) and check the locator against a naive walk.
        let entries = g.vec(1, 8, random_entry);
        assert!(entries.iter().all(|e| e.check(8).is_ok()));
        // Naive: assign slots in (block, sub) order, pointer 0 everywhere.
        let mut slot = 0usize;
        for (blk, e) in entries.iter().enumerate() {
            let mut s = 0usize;
            while s < 8 {
                match e.range_of(s) {
                    Some((start, cf)) => {
                        for covered in start..start + cf.sub_blocks() {
                            assert_eq!(
                                locate_sub_block(&entries, blk, covered),
                                Some(slot),
                                "block {blk} sub {covered}"
                            );
                        }
                        slot += 1;
                        s = start + cf.sub_blocks();
                    }
                    None => {
                        assert_eq!(locate_sub_block(&entries, blk, s), None);
                        s += 1;
                    }
                }
            }
        }
    });
}

#[test]
fn slots_used_is_consistent_with_locator() {
    props("slots_used_is_consistent_with_locator").run(|g| {
        let e = random_entry(g);
        // The number of distinct slots the entry's subs map to equals
        // slots_used().
        let mut slots = std::collections::HashSet::new();
        for s in 0..8 {
            if let Some(slot) = e.slot_of(s) {
                slots.insert(slot);
            }
        }
        assert_eq!(slots.len(), e.slots_used());
    });
}

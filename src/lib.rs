#![warn(missing_docs)]

//! # Baryon
//!
//! A full reproduction of **“Baryon: Efficient Hybrid Memory Management
//! with Compression and Sub-Blocking”** (Li & Gao, HPCA 2023) as a Rust
//! workspace: the Baryon controller, the baselines it is compared against
//! (Simple, Unison Cache, DICE, Hybrid2), a trace-driven 16-core simulator
//! with DDR4/NVM device models, FPC/BDI compression, synthetic workload
//! generators with real compressible contents, and a benchmark harness
//! regenerating every table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace crates under short names.
//!
//! # Quick start
//!
//! ```
//! use baryon::core::system::{System, SystemConfig};
//! use baryon::workloads::{by_name, Scale};
//!
//! // A heavily scaled-down run (see DESIGN.md for the scaling rules).
//! let scale = Scale { divisor: 2048 };
//! let workload = by_name("505.mcf_r", scale).expect("known workload");
//! let mut system = System::new(SystemConfig::baryon_cache_mode(scale), &workload, 42);
//! let result = system.run(10_000);
//! println!("IPC {:.3}, fast-serve {:.1}%",
//!          result.ipc(), 100.0 * result.serve.fast_serve_rate());
//! ```

pub use baryon_cache as cache;
pub use baryon_compress as compress;
pub use baryon_core as core;
pub use baryon_mem as mem;
pub use baryon_sim as sim;
pub use baryon_workloads as workloads;

//! Quickstart: run Baryon and the Simple DRAM-cache baseline on one
//! workload and compare them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use baryon::core::system::{ControllerKind, System, SystemConfig};
use baryon::workloads::{by_name, Scale};

fn main() {
    // Scale every capacity down 1024x from the paper's machine so the run
    // finishes in seconds (DESIGN.md documents the scaling rules).
    let scale = Scale { divisor: 1024 };
    let workload = by_name("505.mcf_r", scale).expect("known workload");
    let insts_per_core = 100_000;

    println!(
        "workload {} | footprint {} MB | fast {} MB | slow {} MB\n",
        workload.name,
        workload.footprint >> 20,
        scale.fast_bytes() >> 20,
        scale.slow_bytes() >> 20,
    );
    println!(
        "{:<10} {:>12} {:>8} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "ctrl", "cycles", "IPC", "fast-serve", "bloat", "energy(mJ)", "lat p50", "lat p99"
    );

    let mut baseline_cycles = None;
    for kind in [
        ControllerKind::Simple,
        ControllerKind::Baryon(baryon::core::BaryonConfig::default_cache_mode(scale)),
    ] {
        let mut system = System::new(SystemConfig::with_controller(scale, kind), &workload, 42);
        let r = system.run(insts_per_core);
        println!(
            "{:<10} {:>12} {:>8.3} {:>11.1}% {:>10.2} {:>10.3} {:>9} {:>9}",
            r.controller,
            r.total_cycles,
            r.ipc(),
            100.0 * r.serve.fast_serve_rate(),
            r.serve.bloat_factor(),
            r.energy_mj(),
            r.read_latency.percentile(50.0),
            r.read_latency.percentile(99.0),
        );
        match baseline_cycles {
            None => baseline_cycles = Some(r.total_cycles),
            Some(base) => {
                println!(
                    "\nBaryon speedup over Simple: {:.2}x",
                    base as f64 / r.total_cycles as f64
                );
            }
        }
    }
}

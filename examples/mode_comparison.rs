//! Compare the cache scheme (Baryon vs Simple/Unison/DICE) and the flat
//! scheme (Baryon-FA vs Hybrid2) on one workload.
//!
//! ```sh
//! cargo run --release --example mode_comparison [workload]
//! ```

use baryon::core::config::BaryonConfig;
use baryon::core::system::{ControllerKind, System, SystemConfig};
use baryon::workloads::{by_name, Scale};

fn main() {
    let scale = Scale { divisor: 512 };
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ycsb-a".to_owned());
    let workload = by_name(&name, scale).unwrap_or_else(|| {
        eprintln!("unknown workload {name}; try e.g. 505.mcf_r, pr.twi, ycsb-a");
        std::process::exit(1);
    });
    let insts = 60_000;

    println!(
        "workload {name} | footprint {} MB | fast {} MB\n",
        workload.footprint >> 20,
        scale.fast_bytes() >> 20
    );

    println!("--- cache scheme (fast memory is an OS-invisible cache) ---");
    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "controller", "cycles", "serve%", "energy(mJ)"
    );
    for kind in [
        ControllerKind::Simple,
        ControllerKind::Unison,
        ControllerKind::Dice,
        ControllerKind::Baryon(BaryonConfig::default_cache_mode(scale)),
    ] {
        let mut sys = System::new(SystemConfig::with_controller(scale, kind), &workload, 1);
        let r = sys.run(insts);
        println!(
            "{:<12} {:>12} {:>9.1}% {:>10.3}",
            r.controller,
            r.total_cycles,
            100.0 * r.serve.fast_serve_rate(),
            r.energy_mj()
        );
    }

    println!("\n--- flat scheme (fast memory is OS-visible; swaps required) ---");
    println!(
        "{:<12} {:>12} {:>10} {:>10}",
        "controller", "cycles", "serve%", "energy(mJ)"
    );
    for kind in [
        ControllerKind::Hybrid2,
        ControllerKind::Baryon(BaryonConfig::default_flat_fa(scale)),
        // The static cache+flat combination of §III-A.
        ControllerKind::Baryon(BaryonConfig::default_mixed(scale, 0.5)),
    ] {
        let mut sys = System::new(SystemConfig::with_controller(scale, kind), &workload, 1);
        let r = sys.run(insts);
        println!(
            "{:<12} {:>12} {:>9.1}% {:>10.3}",
            r.controller,
            r.total_cycles,
            100.0 * r.serve.fast_serve_rate(),
            r.energy_mj()
        );
    }
}

//! Sweep Baryon design parameters (stage-area size and the selective-commit
//! weight k) on one workload and inspect the access-flow counters — a
//! miniature of the paper's Fig 13 exploration.
//!
//! ```sh
//! cargo run --release --example design_sweep [workload]
//! ```

use baryon::core::config::BaryonConfig;
use baryon::core::system::{ControllerKind, System, SystemConfig};
use baryon::workloads::{by_name, Scale};

fn run_one(
    scale: Scale,
    workload: &baryon::workloads::Workload,
    cfg: BaryonConfig,
) -> (u64, String) {
    let mut sys = System::new(
        SystemConfig::with_controller(scale, ControllerKind::Baryon(cfg)),
        workload,
        1,
    );
    let r = sys.run(60_000);
    let c = *sys.controller().as_baryon().expect("baryon").counters();
    let detail = format!(
        "serve {:>5.1}% | stage hits {:>6} commit hits {:>6} bypasses {:>6} commits {:>5} evictions {:>4}",
        100.0 * r.serve.fast_serve_rate(),
        c.case1_stage_hits,
        c.case2_commit_hits,
        c.case4_bypasses,
        c.commits,
        c.stage_evictions,
    );
    (r.total_cycles, detail)
}

fn main() {
    let scale = Scale { divisor: 512 };
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "505.mcf_r".to_owned());
    let workload = by_name(&name, scale).unwrap_or_else(|| {
        eprintln!("unknown workload {name}");
        std::process::exit(1);
    });

    println!("workload {name}\n");
    println!("--- stage-area size (Fig 13(c) miniature) ---");
    let default_stage = BaryonConfig::default_stage_bytes(scale);
    for frac in [0u64, 4, 2, 1] {
        let mut cfg = BaryonConfig::default_cache_mode(scale);
        cfg.stage_bytes = default_stage.checked_div(frac).unwrap_or(0);
        let label = if frac == 0 {
            "none".to_owned()
        } else {
            format!("{} kB", cfg.stage_bytes >> 10)
        };
        let (cycles, detail) = run_one(scale, &workload, cfg);
        println!("stage {label:>8}: {cycles:>11} cycles | {detail}");
    }

    println!("\n--- selective-commit weight k (Fig 13(d) miniature) ---");
    for k in [0.0, 1.0, 4.0, f64::INFINITY] {
        let mut cfg = BaryonConfig::default_cache_mode(scale);
        cfg.commit_k = k;
        let (cycles, detail) = run_one(scale, &workload, cfg);
        println!("k {k:>8}: {cycles:>11} cycles | {detail}");
    }
    let mut cfg = BaryonConfig::default_cache_mode(scale);
    cfg.commit_all = true;
    let (cycles, detail) = run_one(scale, &workload, cfg);
    println!("commit-all: {cycles:>11} cycles | {detail}");
}

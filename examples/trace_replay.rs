//! Record a workload's trace to disk, replay it, and confirm the replayed
//! simulation is bit-identical — the workflow for feeding captured traces
//! (e.g. from a real machine) into the simulator.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use baryon::core::controller::BaryonController;
use baryon::core::ctrl::{MemoryController, Request};
use baryon::core::BaryonConfig;
use baryon::workloads::{by_name, RecordedTrace, Scale, TraceGen};
use std::fs::File;

fn drive(trace: &mut dyn TraceGen, n: usize, workload: &baryon::workloads::Workload) -> u64 {
    let mut ctrl = BaryonController::new(BaryonConfig::default_cache_mode(Scale { divisor: 1024 }));
    let mut mem = workload.contents(7);
    let mut now = 0u64;
    let mut last_done = 0u64;
    for _ in 0..n {
        let op = trace.next_op();
        now += 20 + op.gap as u64;
        if op.write {
            mem.write_line(op.addr);
            ctrl.writeback(now, op.addr, &mut mem);
        } else {
            let r = ctrl.read(
                now,
                Request {
                    addr: op.addr,
                    core: 0,
                },
                &mut mem,
            );
            last_done = now + r.latency;
        }
    }
    last_done
}

fn main() -> std::io::Result<()> {
    let scale = Scale { divisor: 1024 };
    let workload = by_name("ycsb-a", scale).expect("known workload");
    const OPS: usize = 50_000;

    // 1. Record the generator's stream.
    let mut live = workload.spawn_core(0, 16, 7);
    let recorded = RecordedTrace::record(live.as_mut(), OPS);
    let path = std::env::temp_dir().join("baryon-demo.trace");
    recorded.save(File::create(&path)?)?;
    println!(
        "recorded {} ops ({} KiB) to {}",
        recorded.len(),
        (recorded.len() * 13 + 12) / 1024,
        path.display()
    );

    // 2. Replay from disk and drive the controller with both streams.
    let mut reloaded = RecordedTrace::load(File::open(&path)?)?;
    let mut original = RecordedTrace::new(recorded.ops().to_vec());
    let a = drive(&mut original, OPS, &workload);
    let b = drive(&mut reloaded, OPS, &workload);
    println!("live-trace completion cycle   : {a}");
    println!("replayed-trace completion cycle: {b}");
    assert_eq!(a, b, "replay must be bit-identical");
    println!("replay is bit-identical ✓");
    std::fs::remove_file(&path)?;
    Ok(())
}

//! A guided tour of Baryon's dual-format metadata, recreating the paper's
//! Fig 5 example with the real bit-level encoders:
//!
//! * physical block **Y** in the *stage area* holds ranges from super-block
//!   Φ, including the pair H2-H3 encoded exactly as the paper spells out
//!   ("01 for CF = 2, 0 clean, 111 for the 8th block H, 01 for the 2nd
//!   aligned range");
//! * blocks **A** and **B** are *committed* into physical block Z with the
//!   compact 2 B remap entries, and the prefix-sum locator finds B3 in the
//!   5th sub-block slot, as in §III-C.
//!
//! ```sh
//! cargo run --example metadata_tour
//! ```

use baryon::compress::Cf;
use baryon::core::metadata::stage_entry::{RangeRef, StageEntry};
use baryon::core::metadata::{locate_sub_block, RemapEntry};

fn main() {
    println!("=== stage tag format (Fig 5(a)/(d)) ===\n");
    // Physical block Y stages data from super-block Φ (tag 0x15 here):
    // A0 uncompressed, H2-H3 at CF2, A4-A7 at CF4.
    let mut y = StageEntry::new(0x15, 8);
    y.slots[0] = Some(RangeRef {
        blk_off: 0,
        sub_off: 0,
        cf: Cf::X1,
        dirty: false,
    }); // A0
    y.slots[1] = Some(RangeRef {
        blk_off: 7,
        sub_off: 2,
        cf: Cf::X2,
        dirty: false,
    }); // H2-H3
    y.slots[2] = Some(RangeRef {
        blk_off: 0,
        sub_off: 4,
        cf: Cf::X4,
        dirty: true,
    }); // A4-A7
    println!(
        "stage entry for physical block Y (super-block tag {:#x}):",
        y.tag
    );
    for (i, slot) in y.slots.iter().enumerate() {
        match slot {
            Some(r) => println!(
                "  slot {i}: {:08b}  = block {} subs {}..{} at {} ({})",
                r.encode8(),
                r.blk_off,
                r.sub_off,
                r.sub_off as usize + r.cf.sub_blocks() - 1,
                r.cf,
                if r.dirty { "dirty" } else { "clean" },
            ),
            None => println!("  slot {i}: {:08b}  = empty", 0b1110_0000u8),
        }
    }
    let h23 = y.slots[1].expect("filled above");
    println!(
        "\nH2-H3 field breakdown: prefix CF2, dirty={}, BlkOff={:03b} (block H),\n\
         aligned-pair index {:02b} (the 2nd pair) — matching the paper's example.",
        h23.dirty as u8,
        h23.blk_off,
        h23.sub_off >> 1
    );
    println!("entry footprint: 8 slot bytes + tag/valid/LRU/FIFO/MissCnt = 14 B\n");

    println!("=== remap entry format (Fig 5(b)/(e)) ===\n");
    // Block A: A0, A2 uncompressed; A4-A7 one CF4 range. Block B: B1, B3.
    let mut a = RemapEntry::empty();
    a.set_range(0, Cf::X1);
    a.set_range(2, Cf::X1);
    a.set_range(4, Cf::X4);
    a.pointer = 2; // physical block Z = way 2 of the set
    let mut b = RemapEntry::empty();
    b.set_range(1, Cf::X1);
    b.set_range(3, Cf::X1);
    b.pointer = 2;
    for (name, e) in [("A", &a), ("B", &b)] {
        println!(
            "block {name}: encode16 = {:#018b}  (Remap {:08b}, Pointer {}, CF2 {:04b}, CF4 {:02b})",
            e.encode16(),
            e.remap,
            e.pointer,
            e.cf2,
            e.cf4
        );
    }

    let entries = vec![a, b, RemapEntry::empty(), RemapEntry::empty()];
    println!("\nsorted dense layout of physical block Z (Rule 4):");
    for (blk, name) in [(0usize, "A"), (1, "B")] {
        for sub in 0..8 {
            if let Some(slot) = locate_sub_block(&entries, blk, sub) {
                println!("  {name}{sub} -> sub-block slot {slot}");
            }
        }
    }
    let b3 = locate_sub_block(&entries, 1, 3).expect("B3 is remapped");
    println!(
        "\nB3 sits in slot {b3} (the paper's \"5th sub-block of Z\", counting from 1):\n\
         A0, A2, A4-A7 and B1 each occupy one slot before it."
    );
    assert_eq!(b3, 4);

    println!("\n=== the Z (all-zero) encoding ===\n");
    let mut z = RemapEntry::empty();
    z.set_range(0, Cf::X4);
    z.set_range(4, Cf::X4);
    z.zero = true;
    println!(
        "an all-zero block encodes as {:#018b}: CF2/CF4 forced to the\n\
         invalid all-ones state; its data occupies no fast-memory space.",
        z.encode16()
    );
    assert_eq!(z.slots_used(), 0);
}

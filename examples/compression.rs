//! Explore the compression substrate: FPC vs BDI on different value
//! classes, and Baryon's cacheline-aligned range compression.
//!
//! ```sh
//! cargo run --release --example compression
//! ```

use baryon::compress::{bdi, compress, fpc, Cf, RangeCompressor};
use baryon::workloads::{MemoryContents, ProfileMix, ValueProfile};

fn main() {
    println!("=== per-64B-line compression by value class ===\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9}",
        "profile", "fpc(B)", "bdi(B)", "best(B)", "winner"
    );
    let profiles = [
        ValueProfile::Zero,
        ValueProfile::NarrowInt,
        ValueProfile::Pointer,
        ValueProfile::FloatSimilar,
        ValueProfile::FloatRandom,
        ValueProfile::Text,
        ValueProfile::Random,
    ];
    for p in profiles {
        let mem = MemoryContents::new(ProfileMix::pure(p), 7);
        // Average over a few lines.
        let (mut f, mut b, mut best) = (0usize, 0usize, 0usize);
        const N: usize = 32;
        for i in 0..N as u64 {
            let line = mem.line(i * 64);
            f += fpc::compressed_size(&line);
            b += bdi::compressed_size(&line);
            best += compress(&line).size;
        }
        let winner = if f < b {
            "FPC"
        } else if b < f {
            "BDI"
        } else {
            "tie"
        };
        println!(
            "{:<14} {:>9.1} {:>9.1} {:>9.1} {:>9}",
            format!("{p:?}"),
            f as f64 / N as f64,
            b as f64 / N as f64,
            best as f64 / N as f64,
            winner
        );
    }

    println!("\n=== Baryon range compression (256 B sub-blocks) ===\n");
    println!(
        "{:<14} {:>16} {:>16}",
        "profile", "cacheline-aligned", "whole-range"
    );
    let strict = RangeCompressor::cacheline_aligned();
    let loose = RangeCompressor::whole_range();
    for p in profiles {
        let mem = MemoryContents::new(ProfileMix::pure(p), 7);
        let fmt_cf = |rc: &RangeCompressor| -> String {
            // Largest CF accepted for a 4-sub-block window at address 0.
            for cf in Cf::descending() {
                let data = mem.range(0, cf.sub_blocks() * 256);
                if rc.fits(&data, cf) {
                    return cf.to_string();
                }
            }
            "1x".to_owned()
        };
        println!(
            "{:<14} {:>16} {:>16}",
            format!("{p:?}"),
            fmt_cf(&strict),
            fmt_cf(&loose)
        );
    }
    println!("\nCacheline-aligned compression is stricter (every 64·n-byte chunk");
    println!("must compress alone) but lets one DDRx burst serve a whole chunk.");
}

//! Compare full memory-read-latency distributions across controllers —
//! the tail behaviour behind the serve-rate headlines.
//!
//! ```sh
//! cargo run --release --example latency_analysis [workload]
//! ```

use baryon::core::config::BaryonConfig;
use baryon::core::system::{ControllerKind, System, SystemConfig};
use baryon::workloads::{by_name, Scale};

fn main() {
    let scale = Scale { divisor: 512 };
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "505.mcf_r".to_owned());
    let workload = by_name(&name, scale).unwrap_or_else(|| {
        eprintln!("unknown workload {name}; try `baryon-cli list`");
        std::process::exit(1);
    });

    println!("read-latency distributions for {name} (cycles)\n");
    println!(
        "{:<10} {:>9} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "ctrl", "samples", "mean", "p50", "p90", "p99", "max"
    );
    for kind in [
        ControllerKind::Simple,
        ControllerKind::Unison,
        ControllerKind::Dice,
        ControllerKind::Baryon(BaryonConfig::default_cache_mode(scale)),
    ] {
        let mut cfg = SystemConfig::with_controller(scale, kind);
        cfg.warmup_insts = 30_000;
        let mut sys = System::new(cfg, &workload, 7);
        let r = sys.run(80_000);
        let h = &r.read_latency;
        println!(
            "{:<10} {:>9} {:>7.0} {:>7} {:>7} {:>7} {:>9}",
            r.controller,
            h.count(),
            h.mean(),
            h.percentile(50.0),
            h.percentile(90.0),
            h.percentile(99.0),
            h.max()
        );
        // A coarse textual histogram of the log2 buckets.
        let buckets = h.buckets();
        let peak = buckets.iter().map(|(_, n)| *n).max().unwrap_or(1);
        for (lo, n) in buckets {
            let bar = "#".repeat((n * 40 / peak).max(1) as usize);
            println!("    >= {lo:>6} cyc  {bar} {n}");
        }
        println!();
    }
    println!("Baryon trades a few long-tail slow-memory accesses (bypasses,");
    println!("stage fills) for a fat fast-memory mode — the same story the");
    println!("paper tells through serve rates.");
}
